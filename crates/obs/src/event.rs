//! The trace event taxonomy, the sample-grid row, and their byte-stable
//! line formats.
//!
//! Every value serializes to exactly one line of ASCII text beginning with
//! a single-character tag, so traces diff cleanly with standard tools and
//! the [`crate::diff`] bisector can stream them. Lines round-trip exactly:
//! `parse_line(write_line(e)) == e`.

use crate::TraceMode;
use std::fmt;

/// Instruction class carried by issue events. A flattened view of the
/// simulator's `Instr` so this crate stays a dependency leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    Alu,
    Load,
    Store,
    Red,
    Atom,
    Bar,
    Fence,
    Lock,
}

impl InstrKind {
    pub fn as_str(self) -> &'static str {
        match self {
            InstrKind::Alu => "alu",
            InstrKind::Load => "load",
            InstrKind::Store => "store",
            InstrKind::Red => "red",
            InstrKind::Atom => "atom",
            InstrKind::Bar => "bar",
            InstrKind::Fence => "fence",
            InstrKind::Lock => "lock",
        }
    }

    pub fn parse(s: &str) -> Option<InstrKind> {
        Some(match s {
            "alu" => InstrKind::Alu,
            "load" => InstrKind::Load,
            "store" => InstrKind::Store,
            "red" => InstrKind::Red,
            "atom" => InstrKind::Atom,
            "bar" => InstrKind::Bar,
            "fence" => InstrKind::Fence,
            "lock" => InstrKind::Lock,
            _ => return None,
        })
    }
}

/// Why a warp went to sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepReason {
    /// Outstanding load transactions (`WaitMem`).
    Mem,
    /// Blocking atomic awaiting its old value (`WaitAtom`).
    Atom,
    /// Fence draining the warp's outstanding traffic (`WaitDrain`).
    Drain,
    /// Parked in a ticket-lock queue (`WaitLock`).
    Lock,
    /// Parked at a CTA barrier (`WaitBar`).
    Barrier,
    /// Parked until the model's buffer flush completes (`WaitFlush`).
    Flush,
}

impl SleepReason {
    pub fn as_str(self) -> &'static str {
        match self {
            SleepReason::Mem => "mem",
            SleepReason::Atom => "atom",
            SleepReason::Drain => "drain",
            SleepReason::Lock => "lock",
            SleepReason::Barrier => "barrier",
            SleepReason::Flush => "flush",
        }
    }

    pub fn parse(s: &str) -> Option<SleepReason> {
        Some(match s {
            "mem" => SleepReason::Mem,
            "atom" => SleepReason::Atom,
            "drain" => SleepReason::Drain,
            "lock" => SleepReason::Lock,
            "barrier" => SleepReason::Barrier,
            "flush" => SleepReason::Flush,
            _ => return None,
        })
    }
}

/// Which of the engine's explicit wake sites released a sleeping warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSite {
    /// Last outstanding load transaction returned.
    LoadResp,
    /// Blocking atomic's old value arrived.
    AtomAck,
    /// Last outstanding store/flush write drained.
    StoreDrain,
    /// Ticket lock granted.
    LockGrant,
    /// CTA barrier released.
    Barrier,
    /// Model flush completed (`wake_flush_wait`).
    Flush,
}

impl WakeSite {
    pub fn as_str(self) -> &'static str {
        match self {
            WakeSite::LoadResp => "load_resp",
            WakeSite::AtomAck => "atom_ack",
            WakeSite::StoreDrain => "store_drain",
            WakeSite::LockGrant => "lock_grant",
            WakeSite::Barrier => "barrier",
            WakeSite::Flush => "flush",
        }
    }

    pub fn parse(s: &str) -> Option<WakeSite> {
        Some(match s {
            "load_resp" => WakeSite::LoadResp,
            "atom_ack" => WakeSite::AtomAck,
            "store_drain" => WakeSite::StoreDrain,
            "lock_grant" => WakeSite::LockGrant,
            "barrier" => WakeSite::Barrier,
            "flush" => WakeSite::Flush,
            _ => return None,
        })
    }
}

/// Interconnect packet payload class, mirroring `Payload::kind()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    LoadReq,
    StoreReq,
    AtomicReq,
    PreFlush,
    FlushEntry,
    LoadResp,
    StoreAck,
    AtomicAck,
    FlushAck,
}

impl PacketKind {
    pub fn as_str(self) -> &'static str {
        match self {
            PacketKind::LoadReq => "LoadReq",
            PacketKind::StoreReq => "StoreReq",
            PacketKind::AtomicReq => "AtomicReq",
            PacketKind::PreFlush => "PreFlush",
            PacketKind::FlushEntry => "FlushEntry",
            PacketKind::LoadResp => "LoadResp",
            PacketKind::StoreAck => "StoreAck",
            PacketKind::AtomicAck => "AtomicAck",
            PacketKind::FlushAck => "FlushAck",
        }
    }

    pub fn parse(s: &str) -> Option<PacketKind> {
        Some(match s {
            "LoadReq" => PacketKind::LoadReq,
            "StoreReq" => PacketKind::StoreReq,
            "AtomicReq" => PacketKind::AtomicReq,
            "PreFlush" => PacketKind::PreFlush,
            "FlushEntry" => PacketKind::FlushEntry,
            "LoadResp" => PacketKind::LoadResp,
            "StoreAck" => PacketKind::StoreAck,
            "AtomicAck" => PacketKind::AtomicAck,
            "FlushAck" => PacketKind::FlushAck,
            _ => return None,
        })
    }
}

/// DAB global flush epoch phase markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPhase {
    /// Epoch sealed, push phase begins.
    Start,
    /// All entries pushed, draining acknowledgements.
    Drain,
    /// Epoch complete, waiters released.
    Complete,
}

impl FlushPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            FlushPhase::Start => "start",
            FlushPhase::Drain => "drain",
            FlushPhase::Complete => "complete",
        }
    }

    pub fn parse(s: &str) -> Option<FlushPhase> {
        Some(match s {
            "start" => FlushPhase::Start,
            "drain" => FlushPhase::Drain,
            "complete" => FlushPhase::Complete,
            _ => return None,
        })
    }
}

/// GPUDet execution mode, for mode-transition events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetMode {
    Parallel,
    Commit,
    Serial,
}

impl DetMode {
    pub fn as_str(self) -> &'static str {
        match self {
            DetMode::Parallel => "parallel",
            DetMode::Commit => "commit",
            DetMode::Serial => "serial",
        }
    }

    pub fn parse(s: &str) -> Option<DetMode> {
        Some(match s {
            "parallel" => DetMode::Parallel,
            "commit" => DetMode::Commit,
            "serial" => DetMode::Serial,
            _ => return None,
        })
    }
}

/// One architectural trace event, recorded in commit order on the
/// coordinating thread. The `[arch]` section of a trace is a sequence of
/// these and is byte-identical across `DAB_SIM_THREADS` and engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A warp issued one instruction (tag `I`, full).
    Issue {
        cycle: u64,
        sm: u32,
        sched: u32,
        slot: u32,
        unique: u64,
        pc: u32,
        kind: InstrKind,
    },
    /// A warp left `Ready` and parked (tag `Z`, full).
    Sleep {
        cycle: u64,
        sm: u32,
        slot: u32,
        reason: SleepReason,
    },
    /// A parked warp became `Ready` again (tag `W`, full).
    Wake {
        cycle: u64,
        sm: u32,
        slot: u32,
        site: WakeSite,
    },
    /// A deterministic ticket lock was granted (tag `L`, summary).
    LockGrant {
        cycle: u64,
        sm: u32,
        slot: u32,
        unique: u64,
    },
    /// A request packet entered the interconnect (tag `J`, full).
    IcntInject {
        cycle: u64,
        cluster: u32,
        dest: u32,
        kind: PacketKind,
    },
    /// A response packet left the interconnect at a cluster (tag `E`, full).
    IcntEject {
        cycle: u64,
        cluster: u32,
        kind: PacketKind,
    },
    /// A request arrived at a memory partition (tag `Q`, full).
    PartReq {
        cycle: u64,
        partition: u32,
        kind: PacketKind,
    },
    /// A partition produced a response packet (tag `R`, full).
    PartResp {
        cycle: u64,
        partition: u32,
        kind: PacketKind,
    },
    /// A partition's DRAM serviced `count` accesses this cycle (tag `D`, full).
    DramAccess {
        cycle: u64,
        partition: u32,
        count: u64,
    },
    /// A DAB buffer accepted an entry; `len` is the buffer's new occupancy
    /// (tag `B`, full).
    BufFill {
        cycle: u64,
        sm: u32,
        sched: u32,
        len: u32,
    },
    /// A DAB global flush epoch changed phase (tag `F`, summary).
    Flush { cycle: u64, phase: FlushPhase },
    /// GPUDet entered an execution mode (tag `M`, summary).
    ModeChange { cycle: u64, mode: DetMode },
}

impl Event {
    /// The minimum [`TraceMode`] at which this event is recorded.
    pub fn level(&self) -> TraceMode {
        match self {
            Event::LockGrant { .. } | Event::Flush { .. } | Event::ModeChange { .. } => {
                TraceMode::Summary
            }
            _ => TraceMode::Full,
        }
    }

    /// The cycle this event committed on.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Issue { cycle, .. }
            | Event::Sleep { cycle, .. }
            | Event::Wake { cycle, .. }
            | Event::LockGrant { cycle, .. }
            | Event::IcntInject { cycle, .. }
            | Event::IcntEject { cycle, .. }
            | Event::PartReq { cycle, .. }
            | Event::PartResp { cycle, .. }
            | Event::DramAccess { cycle, .. }
            | Event::BufFill { cycle, .. }
            | Event::Flush { cycle, .. }
            | Event::ModeChange { cycle, .. } => cycle,
        }
    }

    /// Stable lowercase kind token, used by `dab-trace show` counts and
    /// `--filter kind=<token>`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Issue { .. } => "issue",
            Event::Sleep { .. } => "sleep",
            Event::Wake { .. } => "wake",
            Event::LockGrant { .. } => "lock_grant",
            Event::IcntInject { .. } => "icnt_inject",
            Event::IcntEject { .. } => "icnt_eject",
            Event::PartReq { .. } => "part_req",
            Event::PartResp { .. } => "part_resp",
            Event::DramAccess { .. } => "dram",
            Event::BufFill { .. } => "buf_fill",
            Event::Flush { .. } => "flush",
            Event::ModeChange { .. } => "mode_change",
        }
    }

    /// Every [`kind_name`](Self::kind_name) token, in taxonomy order.
    pub fn kind_names() -> &'static [&'static str] {
        &[
            "issue",
            "sleep",
            "wake",
            "lock_grant",
            "icnt_inject",
            "icnt_eject",
            "part_req",
            "part_resp",
            "dram",
            "buf_fill",
            "flush",
            "mode_change",
        ]
    }

    /// The SM index when the event names one (warp events and DAB buffer
    /// fills).
    pub fn sm(&self) -> Option<u32> {
        match *self {
            Event::Issue { sm, .. }
            | Event::Sleep { sm, .. }
            | Event::Wake { sm, .. }
            | Event::LockGrant { sm, .. }
            | Event::BufFill { sm, .. } => Some(sm),
            _ => None,
        }
    }

    /// `(sm, slot)` when the event names a specific warp.
    pub fn warp(&self) -> Option<(u32, u32)> {
        match *self {
            Event::Issue { sm, slot, .. }
            | Event::Sleep { sm, slot, .. }
            | Event::Wake { sm, slot, .. }
            | Event::LockGrant { sm, slot, .. } => Some((sm, slot)),
            _ => None,
        }
    }

    /// The memory partition index when the event names one.
    pub fn partition(&self) -> Option<u32> {
        match *self {
            Event::PartReq { partition, .. }
            | Event::PartResp { partition, .. }
            | Event::DramAccess { partition, .. } => Some(partition),
            _ => None,
        }
    }

    /// Serializes the event as its one-line text form (no trailing newline).
    pub fn write_line(&self, out: &mut String) {
        use fmt::Write;
        match *self {
            Event::Issue {
                cycle,
                sm,
                sched,
                slot,
                unique,
                pc,
                kind,
            } => write!(
                out,
                "I {cycle} {sm} {sched} {slot} {unique} {pc} {}",
                kind.as_str()
            ),
            Event::Sleep {
                cycle,
                sm,
                slot,
                reason,
            } => write!(out, "Z {cycle} {sm} {slot} {}", reason.as_str()),
            Event::Wake {
                cycle,
                sm,
                slot,
                site,
            } => write!(out, "W {cycle} {sm} {slot} {}", site.as_str()),
            Event::LockGrant {
                cycle,
                sm,
                slot,
                unique,
            } => write!(out, "L {cycle} {sm} {slot} {unique}"),
            Event::IcntInject {
                cycle,
                cluster,
                dest,
                kind,
            } => write!(out, "J {cycle} {cluster} {dest} {}", kind.as_str()),
            Event::IcntEject {
                cycle,
                cluster,
                kind,
            } => write!(out, "E {cycle} {cluster} {}", kind.as_str()),
            Event::PartReq {
                cycle,
                partition,
                kind,
            } => write!(out, "Q {cycle} {partition} {}", kind.as_str()),
            Event::PartResp {
                cycle,
                partition,
                kind,
            } => write!(out, "R {cycle} {partition} {}", kind.as_str()),
            Event::DramAccess {
                cycle,
                partition,
                count,
            } => write!(out, "D {cycle} {partition} {count}"),
            Event::BufFill {
                cycle,
                sm,
                sched,
                len,
            } => write!(out, "B {cycle} {sm} {sched} {len}"),
            Event::Flush { cycle, phase } => write!(out, "F {cycle} {}", phase.as_str()),
            Event::ModeChange { cycle, mode } => write!(out, "M {cycle} {}", mode.as_str()),
        }
        .expect("writing to a String cannot fail");
    }

    /// Parses one event line as produced by [`Event::write_line`].
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let mut it = line.split_ascii_whitespace();
        let tag = it.next().ok_or("empty event line")?;
        fn num<T: std::str::FromStr>(
            it: &mut std::str::SplitAsciiWhitespace<'_>,
            what: &str,
        ) -> Result<T, String> {
            it.next()
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("bad {what}"))
        }
        fn word<'a>(
            it: &mut std::str::SplitAsciiWhitespace<'a>,
            what: &str,
        ) -> Result<&'a str, String> {
            it.next().ok_or_else(|| format!("missing {what}"))
        }
        let ev = match tag {
            "I" => Event::Issue {
                cycle: num(&mut it, "cycle")?,
                sm: num(&mut it, "sm")?,
                sched: num(&mut it, "sched")?,
                slot: num(&mut it, "slot")?,
                unique: num(&mut it, "unique")?,
                pc: num(&mut it, "pc")?,
                kind: InstrKind::parse(word(&mut it, "instr kind")?).ok_or("unknown instr kind")?,
            },
            "Z" => Event::Sleep {
                cycle: num(&mut it, "cycle")?,
                sm: num(&mut it, "sm")?,
                slot: num(&mut it, "slot")?,
                reason: SleepReason::parse(word(&mut it, "sleep reason")?)
                    .ok_or("unknown sleep reason")?,
            },
            "W" => Event::Wake {
                cycle: num(&mut it, "cycle")?,
                sm: num(&mut it, "sm")?,
                slot: num(&mut it, "slot")?,
                site: WakeSite::parse(word(&mut it, "wake site")?).ok_or("unknown wake site")?,
            },
            "L" => Event::LockGrant {
                cycle: num(&mut it, "cycle")?,
                sm: num(&mut it, "sm")?,
                slot: num(&mut it, "slot")?,
                unique: num(&mut it, "unique")?,
            },
            "J" => Event::IcntInject {
                cycle: num(&mut it, "cycle")?,
                cluster: num(&mut it, "cluster")?,
                dest: num(&mut it, "dest")?,
                kind: PacketKind::parse(word(&mut it, "packet kind")?)
                    .ok_or("unknown packet kind")?,
            },
            "E" => Event::IcntEject {
                cycle: num(&mut it, "cycle")?,
                cluster: num(&mut it, "cluster")?,
                kind: PacketKind::parse(word(&mut it, "packet kind")?)
                    .ok_or("unknown packet kind")?,
            },
            "Q" => Event::PartReq {
                cycle: num(&mut it, "cycle")?,
                partition: num(&mut it, "partition")?,
                kind: PacketKind::parse(word(&mut it, "packet kind")?)
                    .ok_or("unknown packet kind")?,
            },
            "R" => Event::PartResp {
                cycle: num(&mut it, "cycle")?,
                partition: num(&mut it, "partition")?,
                kind: PacketKind::parse(word(&mut it, "packet kind")?)
                    .ok_or("unknown packet kind")?,
            },
            "D" => Event::DramAccess {
                cycle: num(&mut it, "cycle")?,
                partition: num(&mut it, "partition")?,
                count: num(&mut it, "count")?,
            },
            "B" => Event::BufFill {
                cycle: num(&mut it, "cycle")?,
                sm: num(&mut it, "sm")?,
                sched: num(&mut it, "sched")?,
                len: num(&mut it, "len")?,
            },
            "F" => Event::Flush {
                cycle: num(&mut it, "cycle")?,
                phase: FlushPhase::parse(word(&mut it, "flush phase")?)
                    .ok_or("unknown flush phase")?,
            },
            "M" => Event::ModeChange {
                cycle: num(&mut it, "cycle")?,
                mode: DetMode::parse(word(&mut it, "mode")?).ok_or("unknown mode")?,
            },
            other => return Err(format!("unknown event tag {other:?}")),
        };
        if it.next().is_some() {
            return Err(format!("trailing tokens on {tag} event line"));
        }
        Ok(ev)
    }

    /// Human-readable one-line description, used by panic dumps and the
    /// bisector's report.
    pub fn describe(&self) -> String {
        match *self {
            Event::Issue {
                cycle,
                sm,
                sched,
                slot,
                unique,
                pc,
                kind,
            } => format!(
                "cycle {cycle}: sm {sm} sched {sched} slot {slot} warp {unique} issued {} at pc {pc}",
                kind.as_str()
            ),
            Event::Sleep {
                cycle,
                sm,
                slot,
                reason,
            } => format!(
                "cycle {cycle}: sm {sm} slot {slot} slept ({})",
                reason.as_str()
            ),
            Event::Wake {
                cycle,
                sm,
                slot,
                site,
            } => format!(
                "cycle {cycle}: sm {sm} slot {slot} woke ({})",
                site.as_str()
            ),
            Event::LockGrant {
                cycle,
                sm,
                slot,
                unique,
            } => format!("cycle {cycle}: lock granted to sm {sm} slot {slot} warp {unique}"),
            Event::IcntInject {
                cycle,
                cluster,
                dest,
                kind,
            } => format!(
                "cycle {cycle}: cluster {cluster} injected {} for partition {dest}",
                kind.as_str()
            ),
            Event::IcntEject {
                cycle,
                cluster,
                kind,
            } => format!(
                "cycle {cycle}: cluster {cluster} ejected {}",
                kind.as_str()
            ),
            Event::PartReq {
                cycle,
                partition,
                kind,
            } => format!(
                "cycle {cycle}: partition {partition} received {}",
                kind.as_str()
            ),
            Event::PartResp {
                cycle,
                partition,
                kind,
            } => format!(
                "cycle {cycle}: partition {partition} responded {}",
                kind.as_str()
            ),
            Event::DramAccess {
                cycle,
                partition,
                count,
            } => format!("cycle {cycle}: partition {partition} DRAM serviced {count} accesses"),
            Event::BufFill {
                cycle,
                sm,
                sched,
                len,
            } => format!("cycle {cycle}: DAB buffer sm {sm} sched {sched} filled to {len}"),
            Event::Flush { cycle, phase } => {
                format!("cycle {cycle}: DAB flush {}", phase.as_str())
            }
            Event::ModeChange { cycle, mode } => {
                format!("cycle {cycle}: GPUDet entered {} mode", mode.as_str())
            }
        }
    }
}

/// One row of the deterministic sampling grid (tag `S`).
///
/// Rows are emitted at cycles that are exact multiples of the grid
/// interval. Because elided cycles are provably architectural no-ops in
/// both engines, the state read at the top of the next visited cycle
/// equals the state at any elided grid point, so rows are byte-identical
/// across engines and thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Grid cycle this row describes (a multiple of the interval).
    pub cycle: u64,
    /// Warps in the `Ready` state across the machine.
    pub ready_warps: u64,
    /// Total entries buffered by the execution model (DAB buffers).
    pub buffered_entries: u64,
    /// Flits queued at the interconnect's cluster injection ports
    /// (backpressure proxy).
    pub icnt_flits: u64,
    /// Requests queued at partition ROP units, summed.
    pub rop_queued: u64,
    /// Per-SM buffered entries (model-provided; empty in summary mode or
    /// when the model has no buffers).
    pub per_sm_buffered: Vec<u64>,
}

impl Sample {
    /// Serializes the row as its one-line text form (no trailing newline).
    pub fn write_line(&self, out: &mut String) {
        use fmt::Write;
        write!(
            out,
            "S {} {} {} {} {} {}",
            self.cycle,
            self.ready_warps,
            self.buffered_entries,
            self.icnt_flits,
            self.rop_queued,
            self.per_sm_buffered.len()
        )
        .expect("writing to a String cannot fail");
        for v in &self.per_sm_buffered {
            write!(out, " {v}").expect("writing to a String cannot fail");
        }
    }

    /// Parses one sample line as produced by [`Sample::write_line`].
    pub fn parse_line(line: &str) -> Result<Sample, String> {
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("S") {
            return Err("sample line must start with S".into());
        }
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {what}"))
        };
        let cycle = num("cycle")?;
        let ready_warps = num("ready_warps")?;
        let buffered_entries = num("buffered_entries")?;
        let icnt_flits = num("icnt_flits")?;
        let rop_queued = num("rop_queued")?;
        let n = num("per-sm count")? as usize;
        let per_sm_buffered = (0..n)
            .map(|i| num(&format!("per-sm value {i}")))
            .collect::<Result<Vec<_>, _>>()?;
        if it.next().is_some() {
            return Err("trailing tokens on sample line".into());
        }
        Ok(Sample {
            cycle,
            ready_warps,
            buffered_entries,
            icnt_flits,
            rop_queued,
            per_sm_buffered,
        })
    }

    /// Human-readable description for the bisector's report.
    pub fn describe(&self) -> String {
        format!(
            "cycle {}: ready {} buffered {} icnt flits {} rop queued {}",
            self.cycle, self.ready_warps, self.buffered_entries, self.icnt_flits, self.rop_queued
        )
    }
}

/// One engine cycle-skip span (tag `K`): the engine jumped from the end of
/// cycle `from` directly to cycle `to`. Engine-variant by design; lives in
/// the `[engine]` trace section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSpan {
    pub from: u64,
    pub to: u64,
}

impl SkipSpan {
    pub fn write_line(&self, out: &mut String) {
        use fmt::Write;
        write!(out, "K {} {}", self.from, self.to).expect("writing to a String cannot fail");
    }

    pub fn parse_line(line: &str) -> Result<SkipSpan, String> {
        let mut it = line.split_ascii_whitespace();
        if it.next() != Some("K") {
            return Err("skip line must start with K".into());
        }
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("bad {what}"))
        };
        let span = SkipSpan {
            from: num("from")?,
            to: num("to")?,
        };
        if it.next().is_some() {
            return Err("trailing tokens on skip line".into());
        }
        Ok(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: Event) {
        let mut line = String::new();
        ev.write_line(&mut line);
        assert_eq!(Event::parse_line(&line).as_ref(), Ok(&ev), "line {line:?}");
    }

    #[test]
    fn events_roundtrip_through_text() {
        roundtrip(Event::Issue {
            cycle: 7,
            sm: 1,
            sched: 2,
            slot: 3,
            unique: 99,
            pc: 12,
            kind: InstrKind::Red,
        });
        roundtrip(Event::Sleep {
            cycle: 8,
            sm: 0,
            slot: 5,
            reason: SleepReason::Flush,
        });
        roundtrip(Event::Wake {
            cycle: 9,
            sm: 0,
            slot: 5,
            site: WakeSite::AtomAck,
        });
        roundtrip(Event::LockGrant {
            cycle: 10,
            sm: 2,
            slot: 0,
            unique: 41,
        });
        roundtrip(Event::IcntInject {
            cycle: 11,
            cluster: 1,
            dest: 3,
            kind: PacketKind::FlushEntry,
        });
        roundtrip(Event::IcntEject {
            cycle: 12,
            cluster: 0,
            kind: PacketKind::LoadResp,
        });
        roundtrip(Event::PartReq {
            cycle: 13,
            partition: 1,
            kind: PacketKind::AtomicReq,
        });
        roundtrip(Event::PartResp {
            cycle: 14,
            partition: 1,
            kind: PacketKind::AtomicAck,
        });
        roundtrip(Event::DramAccess {
            cycle: 15,
            partition: 0,
            count: 4,
        });
        roundtrip(Event::BufFill {
            cycle: 16,
            sm: 3,
            sched: 1,
            len: 17,
        });
        roundtrip(Event::Flush {
            cycle: 17,
            phase: FlushPhase::Drain,
        });
        roundtrip(Event::ModeChange {
            cycle: 18,
            mode: DetMode::Serial,
        });
    }

    #[test]
    fn samples_roundtrip_through_text() {
        for s in [
            Sample {
                cycle: 1024,
                ready_warps: 12,
                buffered_entries: 7,
                icnt_flits: 3,
                rop_queued: 2,
                per_sm_buffered: vec![],
            },
            Sample {
                cycle: 2048,
                ready_warps: 0,
                buffered_entries: 9,
                icnt_flits: 0,
                rop_queued: 0,
                per_sm_buffered: vec![4, 5, 0],
            },
        ] {
            let mut line = String::new();
            s.write_line(&mut line);
            assert_eq!(Sample::parse_line(&line).as_ref(), Ok(&s), "line {line:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::parse_line("").is_err());
        assert!(Event::parse_line("X 1 2 3").is_err());
        assert!(Event::parse_line("I 1 2 3").is_err());
        assert!(Event::parse_line("F 1 sideways").is_err());
        assert!(Event::parse_line("L 1 2 3 4 5").is_err());
        assert!(Sample::parse_line("S 1 2 3 4 5 2 9").is_err());
        assert!(SkipSpan::parse_line("K 5").is_err());
    }

    #[test]
    fn levels_match_the_taxonomy() {
        assert_eq!(
            Event::LockGrant {
                cycle: 0,
                sm: 0,
                slot: 0,
                unique: 0
            }
            .level(),
            TraceMode::Summary
        );
        assert_eq!(
            Event::Issue {
                cycle: 0,
                sm: 0,
                sched: 0,
                slot: 0,
                unique: 0,
                pc: 0,
                kind: InstrKind::Alu
            }
            .level(),
            TraceMode::Full
        );
    }
}
