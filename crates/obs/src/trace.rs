//! The trace container, its byte-stable text format, and the recording
//! side used by the simulator engine.
//!
//! # Text format
//!
//! ```text
//! DABTRACE 1
//! mode full
//! interval 1024
//! arch <count>
//! I <cycle> <sm> <sched> <slot> <unique> <pc> <kind>
//! ...
//! samples <count>
//! S <cycle> <ready> <buffered> <icnt> <rop> <n> [per-sm...]
//! ...
//! engine <count>
//! K <from> <to>
//! ...
//! end
//! ```
//!
//! Section counts make truncation detectable; the `end` sentinel makes it
//! certain. The `[arch]` and `[samples]` sections are thread- and
//! engine-invariant; `[engine]` (cycle-skip spans) is thread-invariant
//! only.

use crate::event::{Event, Sample, SkipSpan};
use crate::TraceMode;
use std::fmt;

/// Current trace format version, bumped on any line-format change.
pub const FORMAT_VERSION: u32 = 1;

/// A completed run's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Mode the trace was recorded at (affects which events are present).
    pub mode: TraceMode,
    /// Sampling grid interval in cycles.
    pub sample_interval: u64,
    /// Architectural events in commit order.
    pub arch: Vec<Event>,
    /// Sample-grid rows in cycle order.
    pub samples: Vec<Sample>,
    /// Engine cycle-skip spans (engine-variant by design).
    pub skips: Vec<SkipSpan>,
}

impl Trace {
    /// Serializes the whole trace to its canonical text form. Two runs
    /// that behaved identically produce byte-identical output.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        writeln!(out, "DABTRACE {FORMAT_VERSION}").unwrap();
        writeln!(out, "mode {}", self.mode).unwrap();
        writeln!(out, "interval {}", self.sample_interval).unwrap();
        writeln!(out, "arch {}", self.arch.len()).unwrap();
        for ev in &self.arch {
            ev.write_line(&mut out);
            out.push('\n');
        }
        writeln!(out, "samples {}", self.samples.len()).unwrap();
        for s in &self.samples {
            s.write_line(&mut out);
            out.push('\n');
        }
        writeln!(out, "engine {}", self.skips.len()).unwrap();
        for k in &self.skips {
            k.write_line(&mut out);
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses a trace from its text form, with 1-based line numbers in
    /// errors.
    pub fn parse(text: &str) -> Result<Trace, ParseError> {
        let mut lines = text.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), ParseError> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| ParseError {
                    line: 0,
                    message: format!("unexpected end of trace, wanted {what}"),
                })
        };

        let (ln, magic) = next("magic header")?;
        let version = magic
            .strip_prefix("DABTRACE ")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| ParseError::at(ln, "not a DABTRACE file"))?;
        if version != FORMAT_VERSION {
            return Err(ParseError::at(
                ln,
                format!("unsupported trace version {version}, this build reads {FORMAT_VERSION}"),
            ));
        }

        let (ln, mode_line) = next("mode line")?;
        let mode = mode_line
            .strip_prefix("mode ")
            .and_then(|m| crate::parse_trace_mode(m).ok())
            .ok_or_else(|| ParseError::at(ln, "bad mode line"))?;

        let (ln, interval_line) = next("interval line")?;
        let sample_interval = interval_line
            .strip_prefix("interval ")
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .ok_or_else(|| ParseError::at(ln, "bad interval line"))?;

        fn section_count((ln, line): (usize, &str), name: &str) -> Result<usize, ParseError> {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| ParseError::at(ln, format!("bad {name:?} section header")))
        }

        let n_arch = section_count(next("arch section")?, "arch")?;
        let mut arch = Vec::with_capacity(n_arch);
        for _ in 0..n_arch {
            let (ln, line) = next("arch event")?;
            arch.push(Event::parse_line(line).map_err(|m| ParseError::at(ln, m))?);
        }

        let n_samples = section_count(next("samples section")?, "samples")?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let (ln, line) = next("sample row")?;
            samples.push(Sample::parse_line(line).map_err(|m| ParseError::at(ln, m))?);
        }

        let n_skips = section_count(next("engine section")?, "engine")?;
        let mut skips = Vec::with_capacity(n_skips);
        for _ in 0..n_skips {
            let (ln, line) = next("skip span")?;
            skips.push(SkipSpan::parse_line(line).map_err(|m| ParseError::at(ln, m))?);
        }

        let (ln, sentinel) = next("end sentinel")?;
        if sentinel != "end" {
            return Err(ParseError::at(
                ln,
                "missing end sentinel (truncated trace?)",
            ));
        }

        Ok(Trace {
            mode,
            sample_interval,
            arch,
            samples,
            skips,
        })
    }
}

/// A trace text-format parse failure, with its 1-based line number (0 for
/// unexpected end of input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// The recording side, owned by the simulator while a run is live.
///
/// Only constructed when `DAB_TRACE` is not `off`; the engine holds an
/// `Option<Box<Tracer>>`, so the off-mode fast path is a single pointer
/// null-check per site. [`Tracer::record`] filters by [`Event::level`],
/// so callers may offer events unconditionally.
#[derive(Debug)]
pub struct Tracer {
    mode: TraceMode,
    sample_interval: u64,
    next_sample: u64,
    arch: Vec<Event>,
    samples: Vec<Sample>,
    skips: Vec<SkipSpan>,
}

impl Tracer {
    /// Creates a tracer. `mode` must be enabled and `sample_interval`
    /// positive — off-mode runs must not construct a tracer at all.
    pub fn new(mode: TraceMode, sample_interval: u64) -> Tracer {
        assert!(mode.enabled(), "Tracer::new called with TraceMode::Off");
        assert!(sample_interval > 0, "sample interval must be positive");
        Tracer {
            mode,
            sample_interval,
            next_sample: 0,
            arch: Vec::new(),
            samples: Vec::new(),
            skips: Vec::new(),
        }
    }

    /// The mode this tracer records at.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// True when per-cycle detail events (issue, sleep/wake, traffic) are
    /// kept; callers use this to skip building event payloads in summary
    /// mode.
    pub fn is_full(&self) -> bool {
        self.mode >= TraceMode::Full
    }

    /// Records an architectural event if the mode keeps its level.
    pub fn record(&mut self, ev: Event) {
        if self.mode >= ev.level() {
            self.arch.push(ev);
        }
    }

    /// Records an engine cycle-skip span (always kept; the `[engine]`
    /// section is cheap and engine-variant by design).
    pub fn record_skip(&mut self, from: u64, to: u64) {
        self.skips.push(SkipSpan { from, to });
    }

    /// The earliest sample-grid cycle that is due at or before `now`, or
    /// `None` when the grid is caught up. The engine calls this in a loop
    /// at the top of each visited cycle and answers each due point with
    /// [`Tracer::push_sample`]; because elided cycles are architectural
    /// no-ops, current state is the correct reading for every due point.
    pub fn next_due_sample(&self, now: u64) -> Option<u64> {
        (self.next_sample <= now).then_some(self.next_sample)
    }

    /// Appends a sample row for the grid point previously returned by
    /// [`Tracer::next_due_sample`] and advances the grid.
    pub fn push_sample(&mut self, sample: Sample) {
        debug_assert_eq!(
            sample.cycle, self.next_sample,
            "sample rows must answer next_due_sample in order"
        );
        self.next_sample = sample.cycle + self.sample_interval;
        self.samples.push(sample);
    }

    /// Number of architectural events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.arch.len() as u64
    }

    /// Number of sample rows recorded so far.
    pub fn sample_count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Formats the last `n` architectural events for panic messages, most
    /// recent last. Empty string when nothing was recorded.
    pub fn tail(&self, n: usize) -> String {
        Self::render_tail(self.arch.iter().collect::<Vec<_>>(), n)
    }

    /// Formats the last `n` events that name the warp `(sm, slot)`.
    pub fn tail_for_warp(&self, sm: u32, slot: u32, n: usize) -> String {
        Self::render_tail(
            self.arch
                .iter()
                .filter(|e| e.warp() == Some((sm, slot)))
                .collect(),
            n,
        )
    }

    /// Formats the last `n` events that name the memory partition `p`.
    pub fn tail_for_partition(&self, p: u32, n: usize) -> String {
        Self::render_tail(
            self.arch
                .iter()
                .filter(|e| e.partition() == Some(p))
                .collect(),
            n,
        )
    }

    fn render_tail(matching: Vec<&Event>, n: usize) -> String {
        let start = matching.len().saturating_sub(n);
        matching[start..]
            .iter()
            .map(|e| format!("  {}\n", e.describe()))
            .collect()
    }

    /// Consumes the tracer into the finished [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            mode: self.mode,
            sample_interval: self.sample_interval,
            arch: self.arch,
            samples: self.samples,
            skips: self.skips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DetMode, FlushPhase, InstrKind, PacketKind, SleepReason, WakeSite};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new(TraceMode::Full, 4);
        t.record(Event::Issue {
            cycle: 0,
            sm: 0,
            sched: 0,
            slot: 0,
            unique: 1,
            pc: 0,
            kind: InstrKind::Load,
        });
        t.record(Event::Sleep {
            cycle: 0,
            sm: 0,
            slot: 0,
            reason: SleepReason::Mem,
        });
        t.record(Event::IcntInject {
            cycle: 0,
            cluster: 0,
            dest: 1,
            kind: PacketKind::LoadReq,
        });
        t.record(Event::Wake {
            cycle: 9,
            sm: 0,
            slot: 0,
            site: WakeSite::LoadResp,
        });
        t.record(Event::Flush {
            cycle: 12,
            phase: FlushPhase::Start,
        });
        t.record(Event::ModeChange {
            cycle: 13,
            mode: DetMode::Commit,
        });
        while let Some(cycle) = t.next_due_sample(9) {
            t.push_sample(Sample {
                cycle,
                ready_warps: 1,
                buffered_entries: 0,
                icnt_flits: 2,
                rop_queued: 0,
                per_sm_buffered: vec![0, 0],
            });
        }
        t.record_skip(1, 8);
        t.finish()
    }

    #[test]
    fn trace_roundtrips_through_text() {
        let trace = sample_trace();
        let text = trace.to_text();
        let back = Trace::parse(&text).expect("roundtrip parse");
        assert_eq!(back, trace);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn sample_grid_catches_up_in_order() {
        let trace = sample_trace();
        let cycles: Vec<u64> = trace.samples.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 8]);
    }

    #[test]
    fn summary_mode_drops_full_events() {
        let mut t = Tracer::new(TraceMode::Summary, 16);
        t.record(Event::Issue {
            cycle: 0,
            sm: 0,
            sched: 0,
            slot: 0,
            unique: 1,
            pc: 0,
            kind: InstrKind::Alu,
        });
        t.record(Event::Flush {
            cycle: 1,
            phase: FlushPhase::Complete,
        });
        let trace = t.finish();
        assert_eq!(trace.arch.len(), 1);
        assert!(matches!(trace.arch[0], Event::Flush { .. }));
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let text = sample_trace().to_text();
        let cut = &text[..text.len() - 5];
        assert!(Trace::parse(cut).is_err());
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(4);
        assert!(Trace::parse(&lines.join("\n")).is_err());
    }

    #[test]
    fn tails_filter_by_warp_and_partition() {
        let mut t = Tracer::new(TraceMode::Full, 1024);
        t.record(Event::Wake {
            cycle: 1,
            sm: 0,
            slot: 0,
            site: WakeSite::Barrier,
        });
        t.record(Event::Wake {
            cycle: 2,
            sm: 1,
            slot: 3,
            site: WakeSite::LoadResp,
        });
        t.record(Event::PartReq {
            cycle: 3,
            partition: 1,
            kind: PacketKind::StoreReq,
        });
        let warp_tail = t.tail_for_warp(1, 3, 8);
        assert!(warp_tail.contains("sm 1 slot 3"));
        assert!(!warp_tail.contains("sm 0 slot 0"));
        let part_tail = t.tail_for_partition(1, 8);
        assert!(part_tail.contains("partition 1"));
        assert_eq!(t.tail_for_partition(0, 8), "");
        assert!(t.tail(2).lines().count() == 2);
    }
}
