//! The typed metrics registry: the single schema for every named metric
//! the simulator emits.
//!
//! Historically `SimStats` accepted free-form string keys (`dab.flushes`,
//! `engine.sms_ticked`, ...) with no collision check and no statement of
//! which keys are deterministic. This module replaces that convention with
//! an explicit contract:
//!
//! # Namespace contract
//!
//! Every metric name is dot-separated lowercase ASCII and must live in one
//! of two top-level namespaces:
//!
//! * `det.*` — **deterministic** metrics: byte-stable architectural
//!   counts, merged in cluster-index order, identical at any
//!   `DAB_SIM_THREADS` and either `DAB_COMMIT_SHARD` setting. Two
//!   sub-classes refine the contract:
//!   - [`MetricClass::DetArch`] (everything under `det.*` except the
//!     family below): additionally identical across `DAB_ENGINE`
//!     settings — the dense and event engines must agree bit-for-bit.
//!   - [`MetricClass::DetEngine`] (`det.engine.*`): deterministic for a
//!     *fixed* configuration but **engine-variant by design** (the event
//!     engine skips work the dense engine performs, and counts it).
//!     Cross-engine comparisons strip this family; fixed-config
//!     regression gates compare it exactly.
//! * `wall.*` — host wall-clock measurements (phase timings, profiler
//!   spans). Timing-variant run to run; never merged into `SimStats`,
//!   never part of any determinism digest. `SimStats::bump` rejects
//!   `wall.*` keys outright, which is what guarantees wall data can
//!   never leak into a results digest.
//!
//! Two further properties are keyed off the name, not stored state:
//!
//! * `det.engine.*` and `det.obs.*` are **coordinator-only**: they must
//!   never be bumped on a per-cluster shard copy (the shard fold would
//!   make them dependent on the cluster-to-worker assignment).
//!   `SimStats::merge_shard` debug-asserts this.
//! * `det.obs.*` exists only when tracing is enabled, so equivalence
//!   comparisons must fix the trace mode on both sides.
//!
//! # Merge ordering
//!
//! Counters and histogram buckets are summed; gauges are high-watermarks
//! and merge by `max`. Shard copies fold into the run total in
//! cluster-index order at the end of the run (see
//! `SimStats::merge_shard`), so merged values are identical at any thread
//! count.
//!
//! # Registration
//!
//! Components register their metrics at construction —
//! the engine registers `det.engine.*`/`det.obs.*`/`det.stall.*`, the
//! interconnect and memory partitions their `det.icnt.*`/`det.rop.*`/
//! `det.dram.*` families, and each execution model its own family via
//! `ExecutionModel::register_metrics`. Registering the same name twice
//! panics naming both call sites; bumping a key the run's registry never
//! registered panics at the end of the run. Direct string-key insertion
//! into `SimStats` without a matching registration is **deprecated**:
//! it still compiles (the map is public), but any run through
//! `GpuSim::run` will fail fast on the unregistered key.
//!
//! # Examples
//!
//! ```
//! use obs::metrics::{MetricClass, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter("det.dab.flushes", "global flush epochs");
//! reg.gauge("det.dab.flush_entries_max", "largest single flush");
//! assert!(reg.is_registered("det.dab.flushes"));
//! assert_eq!(
//!     MetricsRegistry::class_of("det.engine.sms_ticked"),
//!     Some(MetricClass::DetEngine)
//! );
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::panic::Location;

/// Determinism class of a metric, derived from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// `det.*` (except `det.engine.*`): thread-, shard- and
    /// engine-invariant; byte-stable.
    DetArch,
    /// `det.engine.*`: thread- and shard-invariant, engine-variant by
    /// design.
    DetEngine,
    /// `wall.*`: host timing; variant run to run.
    Wall,
}

impl MetricClass {
    /// Canonical short label (`det`, `det.engine`, `wall`).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricClass::DetArch => "det",
            MetricClass::DetEngine => "det.engine",
            MetricClass::Wall => "wall",
        }
    }
}

/// What kind of value a registered metric carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum; shard copies merge by addition.
    Counter,
    /// High-watermark; merges by `max`.
    Gauge,
    /// One bucket counter of a fixed-bucket histogram; merges by
    /// addition. The `le` bound is encoded in the key suffix.
    HistogramBucket,
}

/// One registered metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Value semantics.
    pub kind: MetricKind,
    /// One-line human description.
    pub help: &'static str,
    /// Where the metric was registered (for duplicate diagnostics).
    pub site: &'static Location<'static>,
}

/// A fixed-bucket histogram schema: cumulative-style `le` buckets plus an
/// overflow bucket, each materialized as an ordinary counter key so the
/// existing sum-merge machinery applies unchanged.
///
/// The key list must be `bounds.len() + 1` long: one `<name>.le<bound>`
/// key per bound (in strictly increasing order) and a final
/// `<name>.le_inf` overflow key. Keys are spelled out statically because
/// `SimStats` counters are `&'static str`-keyed.
///
/// # Examples
///
/// ```
/// use obs::metrics::HistSpec;
///
/// static H: HistSpec = HistSpec {
///     name: "det.dab.flush_entries_hist",
///     bounds: &[1, 8, 64],
///     buckets: &[
///         "det.dab.flush_entries_hist.le1",
///         "det.dab.flush_entries_hist.le8",
///         "det.dab.flush_entries_hist.le64",
///         "det.dab.flush_entries_hist.le_inf",
///     ],
/// };
/// assert_eq!(H.bucket_key(5), "det.dab.flush_entries_hist.le8");
/// assert_eq!(H.bucket_key(1000), "det.dab.flush_entries_hist.le_inf");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HistSpec {
    /// Base metric name (namespace rules apply).
    pub name: &'static str,
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: &'static [u64],
    /// Bucket counter keys: one per bound plus the `le_inf` overflow.
    pub buckets: &'static [&'static str],
}

impl HistSpec {
    /// The bucket counter key a sample of `value` falls into: the first
    /// bucket whose bound is `>= value`, else the overflow bucket.
    pub fn bucket_key(&self, value: u64) -> &'static str {
        for (i, &b) in self.bounds.iter().enumerate() {
            if value <= b {
                return self.buckets[i];
            }
        }
        self.buckets[self.bounds.len()]
    }
}

/// Why a metric name was rejected by [`MetricsRegistry::class_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError {
    message: String,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for NameError {}

/// Validates a metric name against the namespace contract and returns its
/// class, or an error naming the violation.
pub fn validate_name(name: &str) -> Result<MetricClass, NameError> {
    let bad = |why: &str| {
        Err(NameError {
            message: format!("invalid metric name {name:?}: {why}"),
        })
    };
    if name.is_empty() {
        return bad("empty");
    }
    for seg in name.split('.') {
        if seg.is_empty() {
            return bad("empty dotted segment");
        }
        if !seg
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return bad("segments must be lowercase ASCII, digits, or '_'");
        }
    }
    if let Some(rest) = name.strip_prefix("det.") {
        if rest.is_empty() {
            return bad("nothing after the det. namespace");
        }
        if name.starts_with("det.engine.") {
            Ok(MetricClass::DetEngine)
        } else {
            Ok(MetricClass::DetArch)
        }
    } else if let Some(rest) = name.strip_prefix("wall.") {
        if rest.is_empty() {
            return bad("nothing after the wall. namespace");
        }
        Ok(MetricClass::Wall)
    } else {
        bad("must live under the det. or wall. namespace")
    }
}

/// Whether a key names a coordinator-only counter family (never legal on
/// a per-cluster shard copy).
pub fn is_coordinator_only(name: &str) -> bool {
    name.starts_with("det.engine.") || name.starts_with("det.obs.") || name.starts_with("wall.")
}

/// The per-run metric schema: every name the run is allowed to emit.
///
/// Built once at simulator construction; components add their families as
/// they are constructed. See the module docs for the full contract.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    defs: BTreeMap<&'static str, MetricDef>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter.
    ///
    /// # Panics
    ///
    /// Panics when `name` violates the namespace contract or is already
    /// registered (the message names both call sites).
    #[track_caller]
    pub fn counter(&mut self, name: &'static str, help: &'static str) {
        self.insert(name, MetricKind::Counter, help, Location::caller());
    }

    /// Registers a high-watermark gauge (merged by `max`).
    ///
    /// # Panics
    ///
    /// Same conditions as [`counter`](Self::counter).
    #[track_caller]
    pub fn gauge(&mut self, name: &'static str, help: &'static str) {
        self.insert(name, MetricKind::Gauge, help, Location::caller());
    }

    /// Registers a fixed-bucket histogram: every bucket key of `spec`
    /// becomes a [`MetricKind::HistogramBucket`] counter.
    ///
    /// # Panics
    ///
    /// Panics when the spec is malformed (bucket/bound count mismatch,
    /// bounds not strictly increasing, bucket keys not derived from the
    /// base name) or any key violates the registration rules.
    #[track_caller]
    pub fn histogram(&mut self, spec: &'static HistSpec, help: &'static str) {
        let site = Location::caller();
        assert_eq!(
            spec.buckets.len(),
            spec.bounds.len() + 1,
            "histogram {}: need one bucket key per bound plus the le_inf overflow",
            spec.name
        );
        assert!(
            spec.bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {}: bounds must be strictly increasing",
            spec.name
        );
        for (i, &key) in spec.buckets.iter().enumerate() {
            let expect = if i < spec.bounds.len() {
                format!("{}.le{}", spec.name, spec.bounds[i])
            } else {
                format!("{}.le_inf", spec.name)
            };
            assert_eq!(
                key, expect,
                "histogram {}: bucket key {key:?} must be {expect:?}",
                spec.name
            );
            self.insert(key, MetricKind::HistogramBucket, help, site);
        }
    }

    #[track_caller]
    fn insert(
        &mut self,
        name: &'static str,
        kind: MetricKind,
        help: &'static str,
        site: &'static Location<'static>,
    ) {
        if let Err(e) = validate_name(name) {
            panic!("metric registration at {site}: {e}");
        }
        if let Some(prev) = self.defs.get(name) {
            panic!(
                "duplicate metric registration: {name:?} registered at {} and again at {site}",
                prev.site
            );
        }
        self.defs.insert(name, MetricDef { kind, help, site });
    }

    /// Whether `name` has been registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// The definition of a registered metric.
    pub fn def(&self, name: &str) -> Option<&MetricDef> {
        self.defs.get(name)
    }

    /// Number of registered names (histogram buckets count individually).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates registered `(name, def)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricDef)> {
        self.defs.iter().map(|(k, v)| (*k, v))
    }

    /// Asserts every key in `keys` is registered; `what` names the
    /// source map for the panic message. Catches typo'd bump sites and
    /// unregistered families at the end of a run.
    ///
    /// # Panics
    ///
    /// Panics naming the first offending key.
    pub fn assert_covers<'k>(&self, keys: impl IntoIterator<Item = &'k str>, what: &str) {
        for key in keys {
            assert!(
                self.is_registered(key),
                "{what} contains unregistered metric {key:?}; register it at \
                 construction (engine, interconnect, partition, or the model's \
                 register_metrics hook) so typos fail fast"
            );
        }
    }

    /// Class of a syntactically valid metric name, `None` if invalid.
    pub fn class_of(name: &str) -> Option<MetricClass> {
        validate_name(name).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_follow_namespaces() {
        assert_eq!(validate_name("det.dab.flushes"), Ok(MetricClass::DetArch));
        assert_eq!(
            validate_name("det.engine.sms_ticked"),
            Ok(MetricClass::DetEngine)
        );
        assert_eq!(validate_name("wall.phase.commit"), Ok(MetricClass::Wall));
    }

    #[test]
    fn bad_names_are_rejected() {
        for bad in [
            "",
            "det.",
            "wall.",
            "dab.flushes",
            "engine.sms_ticked",
            "det..x",
            "det.Flushes",
            "det.fl ushes",
            "obs.samples",
        ] {
            assert!(validate_name(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn coordinator_only_families() {
        assert!(is_coordinator_only("det.engine.sms_ticked"));
        assert!(is_coordinator_only("det.obs.samples"));
        assert!(is_coordinator_only("wall.phase.merge"));
        assert!(!is_coordinator_only("det.dab.flushes"));
        assert!(!is_coordinator_only("det.stall.l1_mshr"));
    }

    #[test]
    fn registration_and_lookup() {
        let mut reg = MetricsRegistry::new();
        reg.counter("det.dab.flushes", "flush epochs");
        reg.gauge("det.dab.flush_entries_max", "largest flush");
        assert!(reg.is_registered("det.dab.flushes"));
        assert!(!reg.is_registered("det.dab.typo"));
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.def("det.dab.flushes").map(|d| d.kind),
            Some(MetricKind::Counter)
        );
        reg.assert_covers(["det.dab.flushes"], "test stats");
    }

    #[test]
    #[should_panic(expected = "duplicate metric registration")]
    fn duplicate_registration_panics_with_sites() {
        let mut reg = MetricsRegistry::new();
        reg.counter("det.dab.flushes", "first");
        reg.counter("det.dab.flushes", "second");
    }

    #[test]
    #[should_panic(expected = "must live under the det. or wall. namespace")]
    fn unknown_namespace_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("dab.flushes", "legacy key");
    }

    #[test]
    #[should_panic(expected = "unregistered metric")]
    fn unregistered_key_is_caught() {
        let reg = MetricsRegistry::new();
        reg.assert_covers(["det.dab.typo"], "run counters");
    }

    static HIST: HistSpec = HistSpec {
        name: "det.dab.flush_entries_hist",
        bounds: &[1, 8, 64],
        buckets: &[
            "det.dab.flush_entries_hist.le1",
            "det.dab.flush_entries_hist.le8",
            "det.dab.flush_entries_hist.le64",
            "det.dab.flush_entries_hist.le_inf",
        ],
    };

    #[test]
    fn histogram_buckets_register_and_classify() {
        let mut reg = MetricsRegistry::new();
        reg.histogram(&HIST, "entries per flush");
        assert_eq!(reg.len(), 4);
        assert!(reg.is_registered("det.dab.flush_entries_hist.le_inf"));
        assert_eq!(HIST.bucket_key(0), "det.dab.flush_entries_hist.le1");
        assert_eq!(HIST.bucket_key(1), "det.dab.flush_entries_hist.le1");
        assert_eq!(HIST.bucket_key(2), "det.dab.flush_entries_hist.le8");
        assert_eq!(HIST.bucket_key(64), "det.dab.flush_entries_hist.le64");
        assert_eq!(HIST.bucket_key(65), "det.dab.flush_entries_hist.le_inf");
    }

    static BAD_HIST: HistSpec = HistSpec {
        name: "det.x.h",
        bounds: &[4, 2],
        buckets: &["det.x.h.le4", "det.x.h.le2", "det.x.h.le_inf"],
    };

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_bounds_must_increase() {
        let mut reg = MetricsRegistry::new();
        reg.histogram(&BAD_HIST, "broken");
    }
}
