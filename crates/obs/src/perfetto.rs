//! Chrome trace-event JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Mapping: one simulated cycle = 1 µs of trace time (`ts`). Process/track
//! layout keeps the machine hierarchy readable:
//!
//! * `pid 0` — SMs: one thread (`tid` = SM index) per SM, instant events
//!   for issue/sleep/wake/lock/buffer-fill.
//! * `pid 1` — memory partitions: one thread per partition, instant
//!   events for request/response/DRAM activity.
//! * `pid 2` — interconnect: one thread per cluster, inject/eject events.
//! * `pid 3` — global: DAB flush phases and GPUDet modes as instant
//!   events, sample-grid rows as counter (`ph: "C"`) tracks, engine
//!   cycle-skip spans as duration (`ph: "X"`) slices.
//!
//! Output is deterministic: events are emitted in trace order with
//! hand-rendered JSON (no map iteration).

use crate::event::Event;
use crate::trace::Trace;

/// Renders the whole trace as a Chrome trace-event JSON object.
pub fn to_chrome_json(trace: &Trace) -> String {
    to_chrome_json_with_profile(trace, &[])
}

/// Renders the trace plus a set of profiler counter tracks — collapsed-stack
/// `(frame-path, microseconds)` pairs as parsed by
/// [`crate::profile::parse_collapsed`]. Each pair becomes one `ph: "C"`
/// counter sample on `pid 3`, named by its frame path, placed at `ts 0`.
///
/// The profile rides in as a *sidecar* at export time (from a `.folded`
/// file) rather than living inside the trace: profile values are `wall.*`
/// host timings, and embedding them in the trace format would break the
/// trace's byte-identity across runs.
pub fn to_chrome_json_with_profile(trace: &Trace, profile: &[(String, u64)]) -> String {
    let mut events: Vec<String> = Vec::new();

    for (path, us) in profile {
        events.push(format!(
            "{{\"name\":\"{path}\",\"ph\":\"C\",\"ts\":0,\"pid\":3,\"tid\":2,\
             \"args\":{{\"value\":{us}}}}}"
        ));
    }

    for ev in &trace.arch {
        events.push(render_arch_event(ev));
    }
    for s in &trace.samples {
        for (name, value) in [
            ("ready_warps", s.ready_warps),
            ("buffered_entries", s.buffered_entries),
            ("icnt_flits", s.icnt_flits),
            ("rop_queued", s.rop_queued),
        ] {
            events.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":3,\"tid\":0,\
                 \"args\":{{\"value\":{value}}}}}",
                s.cycle
            ));
        }
        for (sm, v) in s.per_sm_buffered.iter().enumerate() {
            events.push(format!(
                "{{\"name\":\"sm{sm}_buffered\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":{sm},\
                 \"args\":{{\"value\":{v}}}}}",
                s.cycle
            ));
        }
    }
    for k in &trace.skips {
        // A skip span from..to elides cycles (from, to); render it as a
        // duration slice so idle regions are visible at a glance.
        events.push(format!(
            "{{\"name\":\"engine skip\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":3,\"tid\":1,\"args\":{{}}}}",
            k.from,
            k.to.saturating_sub(k.from)
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

fn instant(name: &str, cat: &str, ts: u64, pid: u32, tid: u32, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
    )
}

fn render_arch_event(ev: &Event) -> String {
    match *ev {
        Event::Issue {
            cycle,
            sm,
            sched,
            slot,
            unique,
            pc,
            kind,
        } => instant(
            &format!("issue {}", kind.as_str()),
            "issue",
            cycle,
            0,
            sm,
            &format!("\"sched\":{sched},\"slot\":{slot},\"warp\":{unique},\"pc\":{pc}"),
        ),
        Event::Sleep {
            cycle,
            sm,
            slot,
            reason,
        } => instant(
            &format!("sleep {}", reason.as_str()),
            "warp",
            cycle,
            0,
            sm,
            &format!("\"slot\":{slot}"),
        ),
        Event::Wake {
            cycle,
            sm,
            slot,
            site,
        } => instant(
            &format!("wake {}", site.as_str()),
            "warp",
            cycle,
            0,
            sm,
            &format!("\"slot\":{slot}"),
        ),
        Event::LockGrant {
            cycle,
            sm,
            slot,
            unique,
        } => instant(
            "lock grant",
            "lock",
            cycle,
            0,
            sm,
            &format!("\"slot\":{slot},\"warp\":{unique}"),
        ),
        Event::IcntInject {
            cycle,
            cluster,
            dest,
            kind,
        } => instant(
            &format!("inject {}", kind.as_str()),
            "icnt",
            cycle,
            2,
            cluster,
            &format!("\"dest\":{dest}"),
        ),
        Event::IcntEject {
            cycle,
            cluster,
            kind,
        } => instant(
            &format!("eject {}", kind.as_str()),
            "icnt",
            cycle,
            2,
            cluster,
            "",
        ),
        Event::PartReq {
            cycle,
            partition,
            kind,
        } => instant(
            &format!("req {}", kind.as_str()),
            "mem",
            cycle,
            1,
            partition,
            "",
        ),
        Event::PartResp {
            cycle,
            partition,
            kind,
        } => instant(
            &format!("resp {}", kind.as_str()),
            "mem",
            cycle,
            1,
            partition,
            "",
        ),
        Event::DramAccess {
            cycle,
            partition,
            count,
        } => instant(
            "dram",
            "mem",
            cycle,
            1,
            partition,
            &format!("\"accesses\":{count}"),
        ),
        Event::BufFill {
            cycle,
            sm,
            sched,
            len,
        } => instant(
            "dab buffer fill",
            "dab",
            cycle,
            0,
            sm,
            &format!("\"sched\":{sched},\"len\":{len}"),
        ),
        Event::Flush { cycle, phase } => {
            instant(&format!("flush {}", phase.as_str()), "dab", cycle, 3, 0, "")
        }
        Event::ModeChange { cycle, mode } => instant(
            &format!("gpudet {}", mode.as_str()),
            "gpudet",
            cycle,
            3,
            0,
            "",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlushPhase, InstrKind, Sample, SkipSpan};
    use crate::TraceMode;

    #[test]
    fn export_is_wellformed_and_deterministic() {
        let trace = Trace {
            mode: TraceMode::Full,
            sample_interval: 8,
            arch: vec![
                Event::Issue {
                    cycle: 0,
                    sm: 1,
                    sched: 0,
                    slot: 2,
                    unique: 7,
                    pc: 3,
                    kind: InstrKind::Red,
                },
                Event::Flush {
                    cycle: 5,
                    phase: FlushPhase::Start,
                },
            ],
            samples: vec![Sample {
                cycle: 0,
                ready_warps: 4,
                buffered_entries: 1,
                icnt_flits: 0,
                rop_queued: 0,
                per_sm_buffered: vec![1, 0],
            }],
            skips: vec![SkipSpan { from: 6, to: 20 }],
        };
        let json = to_chrome_json(&trace);
        assert_eq!(json, to_chrome_json(&trace), "export must be deterministic");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("issue red"));
        assert!(json.contains("flush start"));
        assert!(json.contains("ready_warps"));
        assert!(json.contains("sm0_buffered"));
        assert!(json.contains("engine skip"));
        // Balanced braces as a cheap well-formedness check (no string
        // values in the output contain braces).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn profile_sidecar_becomes_counter_tracks() {
        let trace = Trace {
            mode: TraceMode::Summary,
            sample_interval: 8,
            arch: Vec::new(),
            samples: Vec::new(),
            skips: Vec::new(),
        };
        let profile = vec![
            ("engine;issue;prepare".to_string(), 1500),
            ("engine;merge".to_string(), 42),
        ];
        let json = to_chrome_json_with_profile(&trace, &profile);
        assert!(json.contains("\"name\":\"engine;issue;prepare\""));
        assert!(json.contains("\"value\":1500"));
        assert!(json.contains("\"name\":\"engine;merge\""));
        // Sidecar-free export of the same trace is unchanged.
        assert_eq!(
            to_chrome_json(&trace),
            to_chrome_json_with_profile(&trace, &[])
        );
    }
}
