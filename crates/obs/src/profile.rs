//! The low-overhead span profiler: per-phase wall-clock aggregation over
//! the engine's real per-cycle phases.
//!
//! The engine times each phase of its cycle loop with a pair of
//! `Instant` reads and folds the elapsed time into a fixed-size
//! accumulator array — no allocation, no locking, no per-span records.
//! When profiling is off (`DAB_PROFILE` unset) the engine holds no
//! profiler at all and takes none of the `Instant` reads, so the off
//! cost is a handful of pointer null-checks per cycle: not measurable.
//! When on, the cost is ~2 clock reads per instrumented phase per
//! visited cycle, well under the 2% overhead budget on `engine_hot_loop`
//! (the CI bench records the measured ratio in `BENCH_engine.json`).
//!
//! All profile data lives in the `wall.*` namespace
//! ([`Phase::metric_name`]) and is excluded from every determinism
//! surface; enabling the profiler must not change cycles or digests
//! (asserted by `metrics_determinism.rs`).
//!
//! Aggregates export as collapsed-stack text ([`PhaseProfile::to_collapsed`],
//! one `path value_us` line per phase — feed it to any flamegraph
//! renderer) and as counter tracks in the Perfetto export
//! (`perfetto::to_chrome_json_with_profile`).

use std::fmt::Write as _;
use std::time::Duration;

/// One instrumented engine phase. The set is closed and array-indexed so
/// recording a span is two loads and two adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Due time-series sample rows (`emit_due_samples`).
    TraceSamples,
    /// Memory partition ticks (L2, ROP, DRAM).
    Partitions,
    /// Interconnect tick (arbitration, transit).
    Icnt,
    /// Response ejection and delivery to clusters.
    Responses,
    /// Ticket-lock service.
    Locks,
    /// Warp-view construction (`prepare_views`, serial or pooled).
    Prepare,
    /// Commit-phase classification (independence sharding admission).
    CommitClassify,
    /// Independence-sharded commits (pool workers or inline inert).
    CommitParallel,
    /// Serial engine-backed commits, in cluster order.
    CommitSerial,
    /// Outbox merge into the interconnect.
    Merge,
    /// CTA dispatch.
    Dispatch,
    /// Execution-model tick (flush controllers, quantum machines).
    ModelTick,
    /// Deferred model wake application.
    Wakes,
    /// Cycle advance: event-wheel / fast-forward target computation.
    Wheel,
    /// End-of-run trace finalization.
    TraceFinish,
}

/// Number of [`Phase`] variants (accumulator array size).
pub const PHASE_COUNT: usize = 15;

/// Every phase, in fixed reporting order.
pub const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::TraceSamples,
    Phase::Partitions,
    Phase::Icnt,
    Phase::Responses,
    Phase::Locks,
    Phase::Prepare,
    Phase::CommitClassify,
    Phase::CommitParallel,
    Phase::CommitSerial,
    Phase::Merge,
    Phase::Dispatch,
    Phase::ModelTick,
    Phase::Wakes,
    Phase::Wheel,
    Phase::TraceFinish,
];

impl Phase {
    /// Collapsed-stack path for this phase, semicolon-separated from the
    /// `engine` root frame (flamegraph convention).
    pub fn path(self) -> &'static str {
        match self {
            Phase::TraceSamples => "engine;trace;samples",
            Phase::Partitions => "engine;mem;partitions",
            Phase::Icnt => "engine;mem;icnt",
            Phase::Responses => "engine;mem;responses",
            Phase::Locks => "engine;locks",
            Phase::Prepare => "engine;issue;prepare",
            Phase::CommitClassify => "engine;issue;commit;classify",
            Phase::CommitParallel => "engine;issue;commit;parallel",
            Phase::CommitSerial => "engine;issue;commit;serial",
            Phase::Merge => "engine;merge",
            Phase::Dispatch => "engine;dispatch",
            Phase::ModelTick => "engine;model;tick",
            Phase::Wakes => "engine;model;wakes",
            Phase::Wheel => "engine;wheel",
            Phase::TraceFinish => "engine;trace;finish",
        }
    }

    /// The phase's `wall.*` metric name (namespace contract of
    /// [`crate::metrics`]).
    pub fn metric_name(self) -> &'static str {
        match self {
            Phase::TraceSamples => "wall.profile.trace_samples",
            Phase::Partitions => "wall.profile.mem_partitions",
            Phase::Icnt => "wall.profile.mem_icnt",
            Phase::Responses => "wall.profile.mem_responses",
            Phase::Locks => "wall.profile.locks",
            Phase::Prepare => "wall.profile.issue_prepare",
            Phase::CommitClassify => "wall.profile.commit_classify",
            Phase::CommitParallel => "wall.profile.commit_parallel",
            Phase::CommitSerial => "wall.profile.commit_serial",
            Phase::Merge => "wall.profile.merge",
            Phase::Dispatch => "wall.profile.dispatch",
            Phase::ModelTick => "wall.profile.model_tick",
            Phase::Wakes => "wall.profile.model_wakes",
            Phase::Wheel => "wall.profile.wheel",
            Phase::TraceFinish => "wall.profile.trace_finish",
        }
    }
}

/// Per-run span aggregate: total wall time and span count per [`Phase`].
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    totals: [Duration; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
}

impl PhaseProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed span into the aggregate.
    #[inline]
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        let i = phase as usize;
        self.totals[i] += elapsed;
        self.counts[i] += 1;
    }

    /// Total wall time spent in a phase.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase as usize]
    }

    /// Number of spans recorded for a phase.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Sum over all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Adds another profile into this one (e.g. summing workloads).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..PHASE_COUNT {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Collapsed-stack text: one `prefix;path value_us` line per phase
    /// with at least one recorded span, in fixed phase order. An empty
    /// `prefix` yields bare `engine;...` paths; a non-empty prefix (e.g.
    /// a workload name) becomes the root frame.
    pub fn to_collapsed(&self, prefix: &str) -> String {
        let mut out = String::new();
        for &p in &ALL_PHASES {
            if self.count(p) == 0 {
                continue;
            }
            let us = self.total(p).as_micros();
            if prefix.is_empty() {
                writeln!(out, "{} {us}", p.path()).expect("writing to a String cannot fail");
            } else {
                writeln!(out, "{prefix};{} {us}", p.path())
                    .expect("writing to a String cannot fail");
            }
        }
        out
    }

    /// `(metric_name, total_us, count)` rows for every recorded phase,
    /// for table rendering and counter-track export.
    pub fn rows(&self) -> Vec<(&'static str, u64, u64)> {
        ALL_PHASES
            .iter()
            .filter(|&&p| self.count(p) > 0)
            .map(|&p| {
                (
                    p.metric_name(),
                    self.total(p).as_micros() as u64,
                    self.count(p),
                )
            })
            .collect()
    }
}

/// Parses collapsed-stack text (as written by
/// [`PhaseProfile::to_collapsed`] or concatenations of it) into
/// `(path, value_us)` pairs, preserving line order.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (path, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected \"path value_us\", got {line:?}", i + 1))?;
        let value = value
            .parse::<u64>()
            .map_err(|_| format!("line {}: bad span value in {line:?}", i + 1))?;
        out.push((path.to_string(), value));
    }
    Ok(out)
}

/// Environment variable enabling the span profiler.
pub const PROFILE_VAR: &str = "DAB_PROFILE";

/// Strictly parses a `DAB_PROFILE` value: `0` (off) or `1` (on).
///
/// # Errors
///
/// Anything else is an error naming the variable, mirroring the other
/// `DAB_*` knobs.
pub fn parse_profile(raw: &str) -> Result<bool, String> {
    match raw.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!(
            "{PROFILE_VAR} must be \"0\" or \"1\", got {other:?}; unset it to disable profiling"
        )),
    }
}

/// Reads `DAB_PROFILE` from the environment. Absent means off;
/// present-but-invalid panics loudly.
pub fn profile_from_env() -> bool {
    match std::env::var(PROFILE_VAR) {
        Ok(raw) => match parse_profile(&raw) {
            Ok(on) => on,
            Err(e) => panic!("{e}"),
        },
        Err(std::env::VarError::NotPresent) => false,
        Err(e) => panic!("{PROFILE_VAR} is not valid unicode: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phases_covers_every_variant() {
        assert_eq!(ALL_PHASES.len(), PHASE_COUNT);
        for (i, &p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(p as usize, i, "ALL_PHASES must be in discriminant order");
        }
    }

    #[test]
    fn phase_metric_names_are_wall_class() {
        for &p in &ALL_PHASES {
            assert_eq!(
                crate::metrics::validate_name(p.metric_name()),
                Ok(crate::metrics::MetricClass::Wall),
                "{}",
                p.metric_name()
            );
        }
    }

    #[test]
    fn record_and_report() {
        let mut prof = PhaseProfile::new();
        prof.record(Phase::Prepare, Duration::from_micros(30));
        prof.record(Phase::Prepare, Duration::from_micros(12));
        prof.record(Phase::CommitSerial, Duration::from_micros(100));
        assert_eq!(prof.count(Phase::Prepare), 2);
        assert_eq!(prof.total(Phase::Prepare), Duration::from_micros(42));
        assert_eq!(prof.grand_total(), Duration::from_micros(142));
        let rows = prof.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("wall.profile.issue_prepare", 42, 2));
    }

    #[test]
    fn collapsed_roundtrips() {
        let mut prof = PhaseProfile::new();
        prof.record(Phase::Merge, Duration::from_micros(7));
        prof.record(Phase::Wheel, Duration::from_micros(3));
        let text = prof.to_collapsed("atomic_sum");
        assert!(text.contains("atomic_sum;engine;merge 7\n"));
        assert!(text.contains("atomic_sum;engine;wheel 3\n"));
        let pairs = parse_collapsed(&text).unwrap();
        assert_eq!(
            pairs,
            vec![
                ("atomic_sum;engine;merge".to_string(), 7),
                ("atomic_sum;engine;wheel".to_string(), 3),
            ]
        );
        // Bare prefix omits the leading separator.
        let bare = prof.to_collapsed("");
        assert!(bare.starts_with("engine;merge 7\n"));
    }

    #[test]
    fn collapsed_rejects_garbage() {
        assert!(parse_collapsed("engine;merge\n").is_err());
        assert!(parse_collapsed("engine;merge seven\n").is_err());
        assert_eq!(parse_collapsed("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn merge_sums() {
        let mut a = PhaseProfile::new();
        a.record(Phase::Icnt, Duration::from_micros(5));
        let mut b = PhaseProfile::new();
        b.record(Phase::Icnt, Duration::from_micros(6));
        b.record(Phase::Dispatch, Duration::from_micros(1));
        a.merge(&b);
        assert_eq!(a.total(Phase::Icnt), Duration::from_micros(11));
        assert_eq!(a.count(Phase::Icnt), 2);
        assert_eq!(a.count(Phase::Dispatch), 1);
    }

    #[test]
    fn profile_knob_parses_strictly() {
        assert_eq!(parse_profile("0"), Ok(false));
        assert_eq!(parse_profile(" 1 "), Ok(true));
        for bad in ["", "on", "true", "2"] {
            let err = parse_profile(bad).unwrap_err();
            assert!(err.contains(PROFILE_VAR), "{err}");
        }
    }
}
