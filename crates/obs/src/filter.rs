//! Deterministic trace-event filtering for `dab-trace show --filter`.
//!
//! A [`TraceFilter`] is a conjunction of up to three dimensions — event
//! kind, SM index, and `(sm, slot)` warp — parsed from `--filter`
//! specs of the form `kind=<token>`, `sm=<n>`, and `warp=<sm>:<slot>`.
//! Filtering preserves trace order, so the output is as deterministic as
//! the trace itself.
//!
//! # Examples
//!
//! ```
//! use obs::filter::TraceFilter;
//! use obs::Event;
//!
//! let mut f = TraceFilter::default();
//! f.apply("kind=wake").unwrap();
//! f.apply("sm=3").unwrap();
//! let hit = Event::Wake { cycle: 9, sm: 3, slot: 1, site: obs::WakeSite::Barrier };
//! let miss = Event::Wake { cycle: 9, sm: 4, slot: 1, site: obs::WakeSite::Barrier };
//! assert!(f.matches(&hit));
//! assert!(!f.matches(&miss));
//! ```

use crate::Event;

/// A conjunctive event filter (all set dimensions must match).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep only events of this [`Event::kind_name`] token.
    pub kind: Option<&'static str>,
    /// Keep only events naming this SM ([`Event::sm`]).
    pub sm: Option<u32>,
    /// Keep only events naming this exact warp ([`Event::warp`]).
    pub warp: Option<(u32, u32)>,
}

impl TraceFilter {
    /// Whether any dimension is set.
    pub fn is_active(&self) -> bool {
        self.kind.is_some() || self.sm.is_some() || self.warp.is_some()
    }

    /// Parses one `--filter` spec into this filter. Specs are
    /// `kind=<token>`, `sm=<n>`, or `warp=<sm>:<slot>`; repeating a
    /// dimension is an error (a conjunction of two kinds matches
    /// nothing, which is never what was meant).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed or duplicate spec.
    pub fn apply(&mut self, spec: &str) -> Result<(), String> {
        let (dim, value) = spec
            .split_once('=')
            .ok_or_else(|| format!("filter {spec:?}: expected kind=..., sm=..., or warp=..."))?;
        match dim {
            "kind" => {
                let token = Event::kind_names()
                    .iter()
                    .find(|&&k| k == value)
                    .copied()
                    .ok_or_else(|| {
                        format!(
                            "filter {spec:?}: unknown event kind {value:?}; one of: {}",
                            Event::kind_names().join(", ")
                        )
                    })?;
                if self.kind.replace(token).is_some() {
                    return Err("duplicate kind= filter".into());
                }
            }
            "sm" => {
                let sm = value
                    .parse::<u32>()
                    .map_err(|_| format!("filter {spec:?}: sm must be an unsigned integer"))?;
                if self.sm.replace(sm).is_some() {
                    return Err("duplicate sm= filter".into());
                }
            }
            "warp" => {
                let (sm, slot) = value.split_once(':').ok_or_else(|| {
                    format!("filter {spec:?}: warp takes <sm>:<slot>, e.g. warp=3:1")
                })?;
                let sm = sm
                    .parse::<u32>()
                    .map_err(|_| format!("filter {spec:?}: bad warp sm"))?;
                let slot = slot
                    .parse::<u32>()
                    .map_err(|_| format!("filter {spec:?}: bad warp slot"))?;
                if self.warp.replace((sm, slot)).is_some() {
                    return Err("duplicate warp= filter".into());
                }
            }
            other => {
                return Err(format!(
                    "filter {spec:?}: unknown dimension {other:?}; use kind=, sm=, or warp="
                ))
            }
        }
        Ok(())
    }

    /// Whether an event survives the filter. Events lacking a filtered
    /// dimension (e.g. a flush event under `sm=3`) are dropped: the
    /// filter asks for events *about* that SM/warp.
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(kind) = self.kind {
            if event.kind_name() != kind {
                return false;
            }
        }
        if let Some(sm) = self.sm {
            if event.sm() != Some(sm) {
                return false;
            }
        }
        if let Some(warp) = self.warp {
            if event.warp() != Some(warp) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushPhase, InstrKind, SleepReason, WakeSite};

    fn issue(sm: u32, slot: u32) -> Event {
        Event::Issue {
            cycle: 5,
            sm,
            sched: 0,
            slot,
            unique: 7,
            pc: 0,
            kind: InstrKind::Red,
        }
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = TraceFilter::default();
        assert!(!f.is_active());
        assert!(f.matches(&issue(0, 0)));
        assert!(f.matches(&Event::Flush {
            cycle: 1,
            phase: FlushPhase::Start
        }));
    }

    #[test]
    fn kind_filter_selects_one_kind() {
        let mut f = TraceFilter::default();
        f.apply("kind=sleep").unwrap();
        assert!(f.matches(&Event::Sleep {
            cycle: 2,
            sm: 0,
            slot: 1,
            reason: SleepReason::Mem
        }));
        assert!(!f.matches(&issue(0, 1)));
    }

    #[test]
    fn sm_filter_drops_other_sms_and_smless_events() {
        let mut f = TraceFilter::default();
        f.apply("sm=2").unwrap();
        assert!(f.matches(&issue(2, 0)));
        assert!(!f.matches(&issue(3, 0)));
        // A flush names no SM; asking for sm=2 excludes it.
        assert!(!f.matches(&Event::Flush {
            cycle: 1,
            phase: FlushPhase::Complete
        }));
    }

    #[test]
    fn warp_filter_needs_exact_sm_and_slot() {
        let mut f = TraceFilter::default();
        f.apply("warp=1:3").unwrap();
        assert!(f.matches(&issue(1, 3)));
        assert!(!f.matches(&issue(1, 4)));
        assert!(!f.matches(&issue(2, 3)));
        assert!(f.matches(&Event::Wake {
            cycle: 8,
            sm: 1,
            slot: 3,
            site: WakeSite::LoadResp
        }));
    }

    #[test]
    fn dimensions_conjoin() {
        let mut f = TraceFilter::default();
        f.apply("kind=issue").unwrap();
        f.apply("sm=1").unwrap();
        assert!(f.is_active());
        assert!(f.matches(&issue(1, 0)));
        assert!(!f.matches(&issue(0, 0)));
        assert!(!f.matches(&Event::Sleep {
            cycle: 2,
            sm: 1,
            slot: 0,
            reason: SleepReason::Atom
        }));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let mut f = TraceFilter::default();
        assert!(f.apply("kind").is_err());
        assert!(f.apply("kind=warp_dance").is_err());
        assert!(f.apply("sm=minus").is_err());
        assert!(f.apply("warp=3").is_err());
        assert!(f.apply("warp=a:b").is_err());
        assert!(f.apply("cycle=9").is_err());
        f.apply("sm=1").unwrap();
        assert!(f.apply("sm=2").is_err(), "duplicate dimension");
    }
}
