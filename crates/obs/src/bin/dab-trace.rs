//! `dab-trace` — inspect, diff, and export deterministic simulator traces.
//!
//! ```text
//! dab-trace diff <a.trace> <b.trace> [--window N] [--engine]
//! dab-trace export <a.trace> [-o out.json] [--profile <a.folded>]
//! dab-trace show <a.trace> [--filter kind=<tok>] [--filter sm=<n>] [--filter warp=<sm>:<slot>]
//! ```
//!
//! `diff` exits 0 when the deterministic sections agree, 1 with the
//! bisector's first-divergence report when they do not, and 2 on usage or
//! I/O errors. `export` writes Chrome trace-event JSON loadable in
//! Perfetto; `--profile` merges a collapsed-stack `.folded` profile (from
//! a `DAB_PROFILE=1` run) as counter tracks. `show` prints per-kind event
//! counts and the cycle span; `--filter` restricts the statistics (and
//! prints the matching events) to one event kind, SM, or warp — repeat
//! the flag to conjoin dimensions.

use obs::diff::{first_divergence, render};
use obs::{Event, Trace, TraceFilter};
use std::process::ExitCode;

const USAGE: &str = "usage:
  dab-trace diff <a.trace> <b.trace> [--window N] [--engine]
  dab-trace export <a.trace> [-o out.json] [--profile <a.folded>]
  dab-trace show <a.trace> [--filter kind=<tok>|sm=<n>|warp=<sm>:<slot>]...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => cmd_diff(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut window = 5usize;
    let mut include_engine = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => window = n,
                None => {
                    eprintln!("--window needs an unsigned integer\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--engine" => include_engine = true,
            _ => paths.push(arg),
        }
    }
    let [a_path, b_path] = paths[..] else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    match first_divergence(&a, &b, window, include_engine) {
        None => {
            println!(
                "no divergence: {} arch events, {} samples agree",
                a.arch.len(),
                a.samples.len()
            );
            ExitCode::SUCCESS
        }
        Some(d) => {
            print!("{}", render(&d, a_path, b_path));
            ExitCode::from(1)
        }
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let mut input: Option<&String> = None;
    let mut output: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => match it.next() {
                Some(path) => output = Some(path.clone()),
                None => {
                    eprintln!("-o needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--profile" => match it.next() {
                Some(path) => profile_path = Some(path.clone()),
                None => {
                    eprintln!("--profile needs a .folded path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ if input.is_none() => input = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let trace = match load(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let profile = match &profile_path {
        None => Vec::new(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("dab-trace: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match obs::profile::parse_collapsed(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("dab-trace: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let out_path = output.unwrap_or_else(|| format!("{}.json", input.trim_end_matches(".trace")));
    let json = obs::perfetto::to_chrome_json_with_profile(&trace, &profile);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("dab-trace: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path} (open in https://ui.perfetto.dev)");
    ExitCode::SUCCESS
}

fn cmd_show(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut filter = TraceFilter::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--filter" => {
                let Some(spec) = it.next() else {
                    eprintln!(
                        "--filter needs a spec (kind=..., sm=..., warp=<sm>:<slot>)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                };
                if let Err(e) = filter.apply(spec) {
                    eprintln!("dab-trace: {e}");
                    return ExitCode::from(2);
                }
            }
            _ if path.is_none() => path = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", render_show(&trace, &filter));
    ExitCode::SUCCESS
}

/// Renders the `show` report: header, cycle span, per-kind counts, and —
/// when a filter is active — the matching events themselves, in trace
/// order. Split from `cmd_show` so the unit tests below cover it.
fn render_show(trace: &Trace, filter: &TraceFilter) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "mode: {}", trace.mode);
    let _ = writeln!(out, "sample interval: {} cycles", trace.sample_interval);
    let kept: Vec<&Event> = trace.arch.iter().filter(|ev| filter.matches(ev)).collect();
    let span = kept
        .iter()
        .map(|ev| ev.cycle())
        .chain(
            if filter.is_active() {
                // Sample rows are machine-wide; a dimension filter excludes them.
                &[] as &[obs::Sample]
            } else {
                &trace.samples
            }
            .iter()
            .map(|s| s.cycle),
        )
        .fold(None::<(u64, u64)>, |acc, c| match acc {
            None => Some((c, c)),
            Some((lo, hi)) => Some((lo.min(c), hi.max(c))),
        });
    match span {
        Some((lo, hi)) => {
            let _ = writeln!(out, "cycle span: {lo}..={hi}");
        }
        None => {
            let _ = writeln!(out, "cycle span: empty");
        }
    }
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for ev in &kept {
        let name = ev.kind_name();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    if filter.is_active() {
        let _ = writeln!(
            out,
            "arch events: {} matching (of {})",
            kept.len(),
            trace.arch.len()
        );
    } else {
        let _ = writeln!(out, "arch events: {}", trace.arch.len());
    }
    for (name, c) in counts {
        let _ = writeln!(out, "  {name}: {c}");
    }
    if filter.is_active() {
        for ev in &kept {
            let _ = writeln!(out, "{}", ev.describe());
        }
    } else {
        let _ = writeln!(out, "samples: {}", trace.samples.len());
        let _ = writeln!(out, "engine skip spans: {}", trace.skips.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{InstrKind, SleepReason, TraceMode};

    fn demo_trace() -> Trace {
        Trace {
            mode: TraceMode::Full,
            sample_interval: 8,
            arch: vec![
                Event::Issue {
                    cycle: 1,
                    sm: 0,
                    sched: 0,
                    slot: 2,
                    unique: 5,
                    pc: 0,
                    kind: InstrKind::Red,
                },
                Event::Issue {
                    cycle: 2,
                    sm: 1,
                    sched: 1,
                    slot: 0,
                    unique: 9,
                    pc: 1,
                    kind: InstrKind::Alu,
                },
                Event::Sleep {
                    cycle: 3,
                    sm: 1,
                    slot: 0,
                    reason: SleepReason::Mem,
                },
            ],
            samples: Vec::new(),
            skips: Vec::new(),
        }
    }

    #[test]
    fn show_unfiltered_counts_all_kinds() {
        let out = render_show(&demo_trace(), &TraceFilter::default());
        assert!(out.contains("arch events: 3"));
        assert!(out.contains("  issue: 2"));
        assert!(out.contains("  sleep: 1"));
        assert!(out.contains("cycle span: 1..=3"));
    }

    #[test]
    fn show_filter_by_sm_restricts_counts_and_lists_events() {
        let mut filter = TraceFilter::default();
        filter.apply("sm=1").unwrap();
        let out = render_show(&demo_trace(), &filter);
        assert!(out.contains("arch events: 2 matching (of 3)"));
        assert!(out.contains("  issue: 1"));
        assert!(out.contains("  sleep: 1"));
        assert!(out.contains("cycle span: 2..=3"));
        // The matching events are printed in trace order.
        let issue_at = out.find("issue").expect("issue line");
        let sleep_at = out.rfind("sleep").expect("sleep line");
        assert!(issue_at < sleep_at);
    }

    #[test]
    fn show_filter_by_kind_and_warp_conjoin() {
        let mut filter = TraceFilter::default();
        filter.apply("kind=issue").unwrap();
        filter.apply("warp=0:2").unwrap();
        let out = render_show(&demo_trace(), &filter);
        assert!(out.contains("arch events: 1 matching (of 3)"));
        assert!(out.contains("  issue: 1"));
        assert!(!out.contains("sleep: 1"));
    }
}
