//! `dab-trace` — inspect, diff, and export deterministic simulator traces.
//!
//! ```text
//! dab-trace diff <a.trace> <b.trace> [--window N] [--engine]
//! dab-trace export <a.trace> [-o out.json]
//! dab-trace show <a.trace>
//! ```
//!
//! `diff` exits 0 when the deterministic sections agree, 1 with the
//! bisector's first-divergence report when they do not, and 2 on usage or
//! I/O errors. `export` writes Chrome trace-event JSON loadable in
//! Perfetto. `show` prints per-kind event counts and the cycle span.

use obs::diff::{first_divergence, render};
use obs::{Event, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage:
  dab-trace diff <a.trace> <b.trace> [--window N] [--engine]
  dab-trace export <a.trace> [-o out.json]
  dab-trace show <a.trace>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => cmd_diff(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut window = 5usize;
    let mut include_engine = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--window" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => window = n,
                None => {
                    eprintln!("--window needs an unsigned integer\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--engine" => include_engine = true,
            _ => paths.push(arg),
        }
    }
    let [a_path, b_path] = paths[..] else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    match first_divergence(&a, &b, window, include_engine) {
        None => {
            println!(
                "no divergence: {} arch events, {} samples agree",
                a.arch.len(),
                a.samples.len()
            );
            ExitCode::SUCCESS
        }
        Some(d) => {
            print!("{}", render(&d, a_path, b_path));
            ExitCode::from(1)
        }
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let mut input: Option<&String> = None;
    let mut output: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => match it.next() {
                Some(path) => output = Some(path.clone()),
                None => {
                    eprintln!("-o needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ if input.is_none() => input = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let trace = match load(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = output.unwrap_or_else(|| format!("{}.json", input.trim_end_matches(".trace")));
    let json = obs::perfetto::to_chrome_json(&trace);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("dab-trace: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("wrote {out_path} (open in https://ui.perfetto.dev)");
    ExitCode::SUCCESS
}

fn cmd_show(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dab-trace: {e}");
            return ExitCode::from(2);
        }
    };
    println!("mode: {}", trace.mode);
    println!("sample interval: {} cycles", trace.sample_interval);
    let span = trace
        .arch
        .iter()
        .map(Event::cycle)
        .chain(trace.samples.iter().map(|s| s.cycle))
        .fold(None::<(u64, u64)>, |acc, c| match acc {
            None => Some((c, c)),
            Some((lo, hi)) => Some((lo.min(c), hi.max(c))),
        });
    match span {
        Some((lo, hi)) => println!("cycle span: {lo}..={hi}"),
        None => println!("cycle span: empty"),
    }
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for ev in &trace.arch {
        let name = match ev {
            Event::Issue { .. } => "issue",
            Event::Sleep { .. } => "sleep",
            Event::Wake { .. } => "wake",
            Event::LockGrant { .. } => "lock_grant",
            Event::IcntInject { .. } => "icnt_inject",
            Event::IcntEject { .. } => "icnt_eject",
            Event::PartReq { .. } => "part_req",
            Event::PartResp { .. } => "part_resp",
            Event::DramAccess { .. } => "dram",
            Event::BufFill { .. } => "buf_fill",
            Event::Flush { .. } => "flush",
            Event::ModeChange { .. } => "mode_change",
        };
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    println!("arch events: {}", trace.arch.len());
    for (name, c) in counts {
        println!("  {name}: {c}");
    }
    println!("samples: {}", trace.samples.len());
    println!("engine skip spans: {}", trace.skips.len());
    ExitCode::SUCCESS
}
