//! Deterministic observability for the DAB simulator.
//!
//! This crate is the leaf of the workspace dependency graph: it defines the
//! structured trace event taxonomy ([`Event`]), the time-series sample grid
//! ([`Sample`]), the trace container and its byte-stable text format
//! ([`Trace`]), the recording side ([`Tracer`]), the first-divergence
//! bisector ([`diff`]), the Chrome trace-event / Perfetto exporter
//! ([`perfetto`]), the typed metrics registry ([`metrics`]), and the
//! engine span profiler ([`profile`]). The simulator crates (`gpu-sim`,
//! `dab`, `gpudet`, `bench`) depend on it; the `dab-trace` binary ships
//! from here.
//!
//! # Determinism contract
//!
//! Every event in the `[arch]` section and every row of the `[samples]`
//! section is recorded **in commit order on the coordinating thread**, so a
//! trace of a given run is byte-identical at any `DAB_SIM_THREADS` and for
//! the dense and event engines alike. Engine-variant data (cycle-skip
//! spans) lives in the separate `[engine]` section, mirroring the
//! `det.engine.*` statistics counters that the equivalence jobs strip: the
//! bisector compares `[arch]` + `[samples]` by default and touches
//! `[engine]` only on request.
//!
//! # Environment knobs
//!
//! * `DAB_TRACE` — `off` (default) | `summary` | `full`. Parsed strictly:
//!   anything else panics naming the variable, like `DAB_SIM_THREADS`.
//! * `DAB_TRACE_SAMPLE` — sampling grid interval in cycles (default 1024,
//!   must be a positive integer).
//! * `DAB_TRACE_DIR` — when set, bench runners write one `<label>.trace`
//!   file per run into this directory.
//! * `DAB_PROFILE` — `0` (default) | `1`: enable the engine span
//!   profiler. A throughput knob only — results are bit-identical either
//!   way; all profile data lives in the `wall.*` namespace.

pub mod diff;
pub mod event;
pub mod filter;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod trace;

pub use event::{
    DetMode, Event, FlushPhase, InstrKind, PacketKind, Sample, SkipSpan, SleepReason, WakeSite,
};
pub use filter::TraceFilter;
pub use metrics::{HistSpec, MetricClass, MetricsRegistry};
pub use profile::{profile_from_env, Phase, PhaseProfile};
pub use trace::{ParseError, Trace, Tracer};

use std::fmt;

/// Environment variable selecting the trace mode.
pub const TRACE_VAR: &str = "DAB_TRACE";
/// Environment variable overriding the sampling grid interval.
pub const SAMPLE_VAR: &str = "DAB_TRACE_SAMPLE";
/// Environment variable naming a directory for per-run trace files.
pub const TRACE_DIR_VAR: &str = "DAB_TRACE_DIR";

/// How much the simulator records. Ordered: `Off < Summary < Full`; an
/// event is kept when the mode is at least the event's
/// [`Event::level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceMode {
    /// No tracer is constructed at all — the fast path.
    #[default]
    Off,
    /// Rare, high-signal events only: lock grants, flush phases, GPUDet
    /// mode transitions, plus the sample grid.
    Summary,
    /// Everything: per-instruction issue, sleep/wake, interconnect and
    /// partition traffic, DRAM access deltas, buffer fills.
    Full,
}

impl TraceMode {
    /// Canonical lowercase token, as accepted by [`parse_trace_mode`].
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Summary => "summary",
            TraceMode::Full => "full",
        }
    }

    /// True when any recording happens at all.
    pub fn enabled(self) -> bool {
        self != TraceMode::Off
    }
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a `DAB_TRACE` value was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceModeError {
    message: String,
}

impl fmt::Display for TraceModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceModeError {}

/// Strictly parses a `DAB_TRACE` value. Only (whitespace-trimmed) `off`,
/// `summary`, and `full` are accepted; anything else is an error naming
/// the variable, mirroring `par::parse_count`.
pub fn parse_trace_mode(raw: &str) -> Result<TraceMode, TraceModeError> {
    match raw.trim() {
        "off" => Ok(TraceMode::Off),
        "summary" => Ok(TraceMode::Summary),
        "full" => Ok(TraceMode::Full),
        other => Err(TraceModeError {
            message: format!(
                "{TRACE_VAR} must be \"off\", \"summary\", or \"full\", got {other:?}; \
                 unset it to use the default"
            ),
        }),
    }
}

/// Reads `DAB_TRACE` from the environment. Absent means [`TraceMode::Off`];
/// present-but-invalid panics loudly rather than silently tracing the wrong
/// amount.
pub fn trace_mode_from_env() -> TraceMode {
    match std::env::var(TRACE_VAR) {
        Ok(raw) => match parse_trace_mode(&raw) {
            Ok(mode) => mode,
            Err(e) => panic!("{e}"),
        },
        Err(std::env::VarError::NotPresent) => TraceMode::Off,
        Err(e) => panic!("{TRACE_VAR} is not valid unicode: {e}"),
    }
}

/// Default sampling grid interval in cycles.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1024;

/// Why a `DAB_TRACE_SAMPLE` value was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleIntervalError {
    message: String,
}

impl fmt::Display for SampleIntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SampleIntervalError {}

/// Strictly parses a `DAB_TRACE_SAMPLE` value: a positive integer number
/// of cycles between sample-grid points.
pub fn parse_sample_interval(raw: &str) -> Result<u64, SampleIntervalError> {
    let trimmed = raw.trim();
    match trimmed.parse::<u64>() {
        Ok(0) => Err(SampleIntervalError {
            message: format!(
                "{SAMPLE_VAR} is 0, but a zero-cycle sampling grid is meaningless; \
                 unset it to use the default of {DEFAULT_SAMPLE_INTERVAL}"
            ),
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(SampleIntervalError {
            message: format!(
                "{SAMPLE_VAR} is {trimmed:?}, not an unsigned integer; \
                 unset it to use the default of {DEFAULT_SAMPLE_INTERVAL}"
            ),
        }),
    }
}

/// Reads `DAB_TRACE_SAMPLE` from the environment. Absent means
/// [`DEFAULT_SAMPLE_INTERVAL`]; present-but-invalid panics loudly.
pub fn sample_interval_from_env() -> u64 {
    match std::env::var(SAMPLE_VAR) {
        Ok(raw) => match parse_sample_interval(&raw) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        },
        Err(std::env::VarError::NotPresent) => DEFAULT_SAMPLE_INTERVAL,
        Err(e) => panic!("{SAMPLE_VAR} is not valid unicode: {e}"),
    }
}

/// Reads `DAB_TRACE_DIR`: the directory bench runners write per-run
/// `.trace` files into, or `None` when unset.
pub fn trace_dir_from_env() -> Option<std::path::PathBuf> {
    match std::env::var(TRACE_DIR_VAR) {
        Ok(raw) if raw.trim().is_empty() => None,
        Ok(raw) => Some(std::path::PathBuf::from(raw)),
        Err(std::env::VarError::NotPresent) => None,
        Err(e) => panic!("{TRACE_DIR_VAR} is not valid unicode: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_accepts_exact_tokens() {
        assert_eq!(parse_trace_mode("off"), Ok(TraceMode::Off));
        assert_eq!(parse_trace_mode(" summary "), Ok(TraceMode::Summary));
        assert_eq!(parse_trace_mode("full"), Ok(TraceMode::Full));
    }

    #[test]
    fn mode_parse_rejects_garbage() {
        for bad in ["", "Full", "on", "1", "verbose"] {
            let err = parse_trace_mode(bad).unwrap_err();
            assert!(err.to_string().contains(TRACE_VAR), "{err}");
        }
    }

    #[test]
    fn mode_ordering_gates_levels() {
        assert!(TraceMode::Off < TraceMode::Summary);
        assert!(TraceMode::Summary < TraceMode::Full);
        assert!(!TraceMode::Off.enabled());
        assert!(TraceMode::Summary.enabled());
    }

    #[test]
    fn sample_interval_rejects_zero_and_garbage() {
        assert_eq!(parse_sample_interval("512"), Ok(512));
        assert!(parse_sample_interval("0").is_err());
        assert!(parse_sample_interval("many").is_err());
        assert!(parse_sample_interval("-3").is_err());
    }
}
