//! The analyzer's own determinism: rendered reports must be byte-identical
//! across repeated runs and under permutations of warp order within each
//! CTA. Warp order inside a CTA is a scheduling artifact — the
//! happens-before relation (and therefore every finding) may not depend
//! on it.

use std::sync::OnceLock;

use analysis::{analyze_suite, Allowlist};
use dab_workloads::scale::Scale;
use dab_workloads::suite::{analyze_all, micro_suite, Benchmark};
use proptest::prelude::*;

/// Small cross-family subset: barrier phases (conv), irregular graph
/// reductions, and every micro construct (locks, atom-with-return).
fn subset() -> Vec<Benchmark> {
    analyze_all(Scale::Ci)
        .into_iter()
        .filter(|b| matches!(b.name.as_str(), "BC_1k" | "cnv2_3") || b.name.starts_with("micro_"))
        .collect()
}

fn baseline() -> &'static (Vec<Benchmark>, String, String) {
    static BASELINE: OnceLock<(Vec<Benchmark>, String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let benches = subset();
        let report = analyze_suite(&benches, "ci");
        let text = report.render_text(&Allowlist::empty());
        let json = report.render_json(&Allowlist::empty());
        (benches, text, json)
    })
}

/// Applies adjacent-swap edits to warp order; any permutation is a
/// composition of such swaps.
fn permute_warps(bench: &Benchmark, swaps: &[(u8, u8, u8)]) -> Benchmark {
    let mut b = bench.clone();
    for &(k, c, i) in swaps {
        let nk = b.kernels.len();
        let grid = &mut b.kernels[k as usize % nk];
        let nc = grid.ctas.len();
        let cta = &mut grid.ctas[c as usize % nc];
        let n = cta.warps.len();
        if n >= 2 {
            let i = i as usize % n;
            cta.warps.swap(i, (i + 1) % n);
        }
    }
    b
}

#[test]
fn repeated_analysis_is_byte_identical() {
    let benches = micro_suite(Scale::Ci);
    let allow = Allowlist::empty();
    let a = analyze_suite(&benches, "ci");
    let b = analyze_suite(&benches, "ci");
    assert_eq!(a.render_text(&allow), b.render_text(&allow));
    assert_eq!(a.render_json(&allow), b.render_json(&allow));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warp_order_does_not_change_the_report(
        swaps in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()),
            1..24,
        ),
    ) {
        let (benches, text, json) = baseline();
        let permuted: Vec<Benchmark> =
            benches.iter().map(|b| permute_warps(b, &swaps)).collect();
        let report = analyze_suite(&permuted, "ci");
        prop_assert_eq!(&report.render_text(&Allowlist::empty()), text);
        prop_assert_eq!(&report.render_json(&Allowlist::empty()), json);
    }
}
