//! Golden-snapshot tests for `dab-analyze` report rendering.
//!
//! One benchmark per workload family is analyzed at CI scale and the
//! rendered text and JSON reports are compared byte-for-byte against
//! checked-in fixtures under `tests/golden/`. Regenerate after an
//! intentional report change with:
//!
//! ```text
//! DAB_BLESS=1 cargo test -p analysis --test golden
//! ```

use std::path::PathBuf;

use analysis::hbgraph::HbGraph;
use analysis::{analyze_suite, Allowlist, SuiteReport};
use dab_workloads::scale::Scale;
use dab_workloads::suite::analyze_all;

/// One benchmark per family (graph, conv, micro), plus the intentionally
/// racy micro so the fixture pins the allowlisted-hazard rendering too.
const GOLDEN_BENCHES: [&str; 4] = [
    "BC_1k",
    "cnv2_3",
    "micro_atomic_sum",
    "micro_ticket_counter",
];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn shipped_allowlist() -> Allowlist {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("suite-allowlist.txt");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Allowlist::parse(&text).expect("shipped allowlist parses")
}

fn subset_report() -> SuiteReport {
    let benches: Vec<_> = analyze_all(Scale::Ci)
        .into_iter()
        .filter(|b| GOLDEN_BENCHES.contains(&b.name.as_str()))
        .collect();
    assert_eq!(
        benches.len(),
        GOLDEN_BENCHES.len(),
        "suite no longer contains every golden benchmark"
    );
    analyze_suite(&benches, "ci")
}

fn check(fixture: &str, got: &str) {
    let path = fixture_path(fixture);
    if std::env::var("DAB_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(generate fixtures with \
             `DAB_BLESS=1 cargo test -p analysis --test golden`)",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{fixture} drifted; if the report change is intentional, rerun with \
         `DAB_BLESS=1 cargo test -p analysis --test golden` and commit"
    );
}

#[test]
fn golden_text_report() {
    check(
        "subset.txt",
        &subset_report().render_text(&shipped_allowlist()),
    );
}

#[test]
fn golden_json_report() {
    check(
        "subset.json",
        &subset_report().render_json(&shipped_allowlist()),
    );
}

/// Pins the `--emit-hb` exports for a hazard-free and a racy micro: the
/// graph (and therefore the explorer's choice-point input) must stay
/// byte-stable.
#[test]
fn golden_hb_graphs() {
    let hb_benches = ["micro_atomic_sum", "micro_ticket_counter"];
    let benches: Vec<_> = analyze_all(Scale::Ci)
        .into_iter()
        .filter(|b| hb_benches.contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), hb_benches.len());
    for b in &benches {
        for g in HbGraph::of_benchmark(b) {
            let stem = format!("{}__{}", b.name, g.kernel.replace(['/', ' '], "__"));
            check(&format!("{stem}.hb.json"), &g.to_json());
            check(&format!("{stem}.hb.dot"), &g.to_dot());
        }
    }
}
