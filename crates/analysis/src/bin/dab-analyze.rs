//! `dab-analyze` — static determinism analysis over the workload suite.
//!
//! ```text
//! cargo run --release -p analysis --bin dab-analyze -- --suite
//! ```
//!
//! Flags:
//!
//! - `--suite` — analyze every suite benchmark (evaluation + micro)
//! - `--bench <glob>` — analyze matching benchmarks only (repeatable)
//! - `--allowlist <path>` — allowlist file (default: the crate's
//!   `suite-allowlist.txt`)
//! - `--json` — also write `results/dab_analyze.json`
//! - `--emit-hb <dir>` — write each kernel's happens-before graph to
//!   `<dir>/<bench>__<kernel>.hb.json` (and `.hb.dot`), byte-stable
//! - `--quiet` — print totals and violations only
//!
//! Environment: `DAB_SCALE=ci|paper` picks the workload scale,
//! `DAB_JOBS` the analysis worker count, `DAB_RESULTS_DIR` the JSON
//! output directory. Output is byte-identical across runs and worker
//! counts.
//!
//! Exit codes: `0` clean; `1` at least one non-allowlisted hazard or
//! lint; `2` usage or I/O error; `3` the allowlist has *stale* entries —
//! exemptions matching no current hazard or lint (checked only under
//! `--suite`, where the full benchmark set is in view). A stale entry
//! means a fixed race left its exemption behind, silently ready to mask
//! a regression; delete the line to get back to green.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::hbgraph::HbGraph;
use analysis::report::glob_match;
use analysis::{analyze_suite_with_jobs, Allowlist};
use dab_workloads::scale::Scale;
use dab_workloads::suite::analyze_all;

fn usage() -> &'static str {
    "usage: dab-analyze (--suite | --bench <glob>...) \
     [--allowlist <path>] [--json] [--emit-hb <dir>] [--quiet]"
}

fn jobs_from_env() -> usize {
    if let Ok(s) = std::env::var("DAB_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DAB_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

fn default_allowlist_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("suite-allowlist.txt")
}

fn main() -> ExitCode {
    let mut suite = false;
    let mut bench_globs: Vec<String> = Vec::new();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json = false;
    let mut emit_hb: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => suite = true,
            "--bench" => match args.next() {
                Some(g) => bench_globs.push(g),
                None => {
                    eprintln!("--bench needs a benchmark name or glob\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--emit-hb" => match args.next() {
                Some(d) => emit_hb = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--emit-hb needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if !suite && bench_globs.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let scale = Scale::from_env();
    let mut benches = analyze_all(scale);
    if !bench_globs.is_empty() {
        benches.retain(|b| bench_globs.iter().any(|g| glob_match(g, &b.name)));
        if benches.is_empty() {
            eprintln!("no suite benchmark matches {bench_globs:?}");
            return ExitCode::from(2);
        }
    }

    let allow = {
        let path = allowlist_path.unwrap_or_else(default_allowlist_path);
        match std::fs::read_to_string(&path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "warning: cannot read allowlist {}: {e}; gating on every hazard",
                    path.display()
                );
                Allowlist::empty()
            }
        }
    };

    if let Some(dir) = &emit_hb {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let sanitize = |s: &str| s.replace(['/', ' '], "__");
        for b in &benches {
            for g in HbGraph::of_benchmark(b) {
                let stem = format!("{}__{}", sanitize(&b.name), sanitize(&g.kernel));
                for (ext, body) in [("hb.json", g.to_json()), ("hb.dot", g.to_dot())] {
                    let path = dir.join(format!("{stem}.{ext}"));
                    if let Err(e) = std::fs::write(&path, body) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
            }
        }
        if !quiet {
            println!("happens-before graphs: {}", dir.display());
        }
    }

    let report = analyze_suite_with_jobs(&benches, scale.label(), jobs_from_env());

    let text = report.render_text(&allow);
    if quiet {
        // Totals onwards: the tail of the report starting at "totals:".
        match text.find("\ntotals:") {
            Some(pos) => print!("{}", &text[pos + 1..]),
            None => print!("{text}"),
        }
    } else {
        print!("{text}");
    }

    if json {
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join("dab_analyze.json");
            match std::fs::write(&path, report.render_json(&allow)) {
                Ok(()) => println!("results: {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }

    if !report.violations(&allow).is_empty() {
        return ExitCode::from(1);
    }
    // Staleness is only meaningful against the full suite: a --bench
    // subset legitimately leaves entries for the benchmarks not in view.
    if suite {
        let stale = report.stale_entries(&allow);
        if !stale.is_empty() {
            for (bench, label) in &stale {
                eprintln!(
                    "stale allowlist entry: {bench} {label} (matches no current hazard or lint)"
                );
            }
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}
