//! `dab-analyze` — static determinism analysis over the workload suite.
//!
//! ```text
//! cargo run --release -p analysis --bin dab-analyze -- --suite
//! ```
//!
//! Flags:
//!
//! - `--suite` — analyze every suite benchmark (evaluation + micro)
//! - `--bench <glob>` — analyze matching benchmarks only (repeatable)
//! - `--allowlist <path>` — allowlist file (default: the crate's
//!   `suite-allowlist.txt`)
//! - `--json` — also write `results/dab_analyze.json`
//! - `--quiet` — print totals and violations only
//!
//! Environment: `DAB_SCALE=ci|paper` picks the workload scale,
//! `DAB_JOBS` the analysis worker count, `DAB_RESULTS_DIR` the JSON
//! output directory. Output is byte-identical across runs and worker
//! counts. Exit code 1 means at least one non-allowlisted hazard or lint.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::report::glob_match;
use analysis::{analyze_suite_with_jobs, Allowlist};
use dab_workloads::scale::Scale;
use dab_workloads::suite::analyze_all;

fn usage() -> &'static str {
    "usage: dab-analyze (--suite | --bench <glob>...) \
     [--allowlist <path>] [--json] [--quiet]"
}

fn jobs_from_env() -> usize {
    if let Ok(s) = std::env::var("DAB_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DAB_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

fn default_allowlist_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("suite-allowlist.txt")
}

fn main() -> ExitCode {
    let mut suite = false;
    let mut bench_globs: Vec<String> = Vec::new();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => suite = true,
            "--bench" => match args.next() {
                Some(g) => bench_globs.push(g),
                None => {
                    eprintln!("--bench needs a benchmark name or glob\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if !suite && bench_globs.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let scale = Scale::from_env();
    let mut benches = analyze_all(scale);
    if !bench_globs.is_empty() {
        benches.retain(|b| bench_globs.iter().any(|g| glob_match(g, &b.name)));
        if benches.is_empty() {
            eprintln!("no suite benchmark matches {bench_globs:?}");
            return ExitCode::from(2);
        }
    }

    let allow = {
        let path = allowlist_path.unwrap_or_else(default_allowlist_path);
        match std::fs::read_to_string(&path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "warning: cannot read allowlist {}: {e}; gating on every hazard",
                    path.display()
                );
                Allowlist::empty()
            }
        }
    };

    let report = analyze_suite_with_jobs(&benches, scale.label(), jobs_from_env());

    let text = report.render_text(&allow);
    if quiet {
        // Totals onwards: the tail of the report starting at "totals:".
        match text.find("\ntotals:") {
            Some(pos) => print!("{}", &text[pos + 1..]),
            None => print!("{text}"),
        }
    } else {
        print!("{text}");
    }

    if json {
        let dir = results_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join("dab_analyze.json");
            match std::fs::write(&path, report.render_json(&allow)) {
                Ok(()) => println!("results: {}", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    }

    if report.violations(&allow).is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
