//! The hazard taxonomy, deterministic report structures, renderers, and
//! the CI allowlist.
//!
//! Everything in a report is **seed-independent and byte-stable**: reports
//! contain only quantities that are invariant under warp renumbering and
//! analysis-thread scheduling (site counts, access counts, address ranges),
//! never wall-clock, witness warp ids, or hash-map iteration artifacts.
//! `dab-analyze --suite` therefore produces byte-identical output across
//! runs and across `DAB_JOBS` settings.
//!
//! The JSON renderer follows the hand-rolled style of
//! `crates/bench/src/results.rs` (stable field order, hex-string
//! addresses, no external dependencies).

use std::fmt::Write as _;

/// Determinism class of a conflict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Unordered, but every interleaving produces the same bits (fusible
    /// commutative-associative integer reductions, same op per address).
    Benign,
    /// Deterministic under DAB's ordered buffers, rounding-divergent on a
    /// timing-ordered baseline — exactly the weak-determinism gap the
    /// paper's Fig. 1 demonstrates. Counted, never gated.
    WeakDetOk,
    /// A genuine determinism hazard: the final bits (or an observed
    /// return value) depend on commit order even under DAB.
    Hazard,
}

impl Class {
    /// Stable kebab-case label (used in reports and the allowlist).
    pub fn label(self) -> &'static str {
        match self {
            Class::Benign => "benign",
            Class::WeakDetOk => "weak-det-ok",
            Class::Hazard => "hazard",
        }
    }
}

/// What kind of unordered conflict a finding describes.
///
/// Every kind maps to exactly one [`Class`] — the taxonomy table lives in
/// DESIGN.md ("Static trace analysis").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Same-op fusible integer `Red`s race on visibility only.
    CommutativeRedRace,
    /// Same-op floating-point `Red`s whose result is rounding-order
    /// dependent (`red.add.f32`, the Fig. 1 case).
    FpRedRace,
    /// Unordered `exch` atomics: last writer wins, order-dependent.
    ExchRace,
    /// Different atomic opcodes reduce one address: the composite is
    /// non-commutative regardless of the opcodes' own algebra.
    MixedOpAtomics,
    /// An `Atom` (value-returning atomic) races: its return value observes
    /// the commit order even when the final memory bits converge.
    AtomReturnRace,
    /// A plain `Load` races with an atomic update to the same word.
    ReadAtomicRace,
    /// A plain `Store` races with an atomic update to the same word.
    MixedPlainAtomic,
    /// Unordered `Store`/`Store` to one word.
    StoreStore,
    /// Unordered `Store`/`Load` on one word.
    StoreLoad,
    /// Warps of one CTA execute different `Bar` counts: the barrier
    /// pairing (and thus every phase-based ordering) is undefined.
    BarrierDivergence,
}

/// All kinds, in declaration order (used by accumulators and tests).
pub const ALL_KINDS: [ConflictKind; 10] = [
    ConflictKind::CommutativeRedRace,
    ConflictKind::FpRedRace,
    ConflictKind::ExchRace,
    ConflictKind::MixedOpAtomics,
    ConflictKind::AtomReturnRace,
    ConflictKind::ReadAtomicRace,
    ConflictKind::MixedPlainAtomic,
    ConflictKind::StoreStore,
    ConflictKind::StoreLoad,
    ConflictKind::BarrierDivergence,
];

impl ConflictKind {
    /// The determinism class this kind belongs to.
    pub fn class(self) -> Class {
        match self {
            ConflictKind::CommutativeRedRace => Class::Benign,
            ConflictKind::FpRedRace => Class::WeakDetOk,
            _ => Class::Hazard,
        }
    }

    /// Stable kebab-case label (used in reports and the allowlist).
    pub fn label(self) -> &'static str {
        match self {
            ConflictKind::CommutativeRedRace => "commutative-red-race",
            ConflictKind::FpRedRace => "fp-red-race",
            ConflictKind::ExchRace => "exch-race",
            ConflictKind::MixedOpAtomics => "mixed-op-atomics",
            ConflictKind::AtomReturnRace => "atom-return-race",
            ConflictKind::ReadAtomicRace => "read-atomic-race",
            ConflictKind::MixedPlainAtomic => "mixed-plain-atomic",
            ConflictKind::StoreStore => "store-store",
            ConflictKind::StoreLoad => "store-load",
            ConflictKind::BarrierDivergence => "barrier-divergence",
        }
    }
}

/// One aggregated conflict finding (per benchmark, merged across its
/// kernels; grouping key is the [`ConflictKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The conflict kind (class is derived).
    pub kind: ConflictKind,
    /// Conflict sites: distinct 32-bit words for memory conflicts,
    /// divergent CTAs for [`ConflictKind::BarrierDivergence`].
    pub sites: u64,
    /// Total accesses issued to the conflicting sites (all categories).
    pub accesses: u64,
    /// Lowest conflicting byte address (`u64::MAX` when site-less).
    pub addr_min: u64,
    /// Highest conflicting byte address (0 when site-less).
    pub addr_max: u64,
    /// How many kernels of the benchmark exhibit this kind.
    pub kernels: u64,
}

impl Finding {
    /// A fresh accumulator for `kind`.
    pub fn new(kind: ConflictKind) -> Self {
        Self {
            kind,
            sites: 0,
            accesses: 0,
            addr_min: u64::MAX,
            addr_max: 0,
            kernels: 0,
        }
    }

    /// Folds another finding of the same kind into this one.
    pub fn merge(&mut self, other: &Finding) {
        assert_eq!(self.kind, other.kind);
        self.sites += other.sites;
        self.accesses += other.accesses;
        self.addr_min = self.addr_min.min(other.addr_min);
        self.addr_max = self.addr_max.max(other.addr_max);
        self.kernels += other.kernels;
    }

    fn addr_range(&self) -> String {
        if self.addr_min > self.addr_max {
            "-".to_string()
        } else {
            format!("0x{:08x}..0x{:08x}", self.addr_min, self.addr_max)
        }
    }
}

/// Sorts findings most-severe first, then by stable label.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.kind
            .class()
            .cmp(&a.kind.class())
            .then_with(|| a.kind.label().cmp(b.kind.label()))
    });
}

/// A well-formedness violation of the trace itself (see [`crate::lint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// An atomic access names a lane ≥ the warp's `active_lanes`.
    LaneOutOfRange,
    /// A load/store access carries more addresses than active lanes.
    TooManyLaneAddrs,
    /// Two atomic accesses of one instruction name the same lane.
    DuplicateLane,
    /// A data or lock address is not 4-byte aligned.
    MisalignedAddress,
    /// A warp with an empty instruction stream.
    EmptyProgram,
    /// A kernel grid with no CTAs (or a CTA with no warps).
    EmptyKernel,
    /// `ctas[i].cta_id != i`: static CTA distribution would misassign.
    CtaIdMismatch,
    /// A ticket-lock variable's word is also accessed as data.
    LockAliasesData,
}

impl LintKind {
    /// Stable kebab-case label (used in reports and the allowlist).
    pub fn label(self) -> &'static str {
        match self {
            LintKind::LaneOutOfRange => "lane-out-of-range",
            LintKind::TooManyLaneAddrs => "too-many-lane-addrs",
            LintKind::DuplicateLane => "duplicate-lane",
            LintKind::MisalignedAddress => "misaligned-address",
            LintKind::EmptyProgram => "empty-program",
            LintKind::EmptyKernel => "empty-kernel",
            LintKind::CtaIdMismatch => "cta-id-mismatch",
            LintKind::LockAliasesData => "lock-aliases-data",
        }
    }
}

/// One deduplicated lint: first offending location plus occurrence count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// What invariant was violated.
    pub kind: LintKind,
    /// First offending location, human-readable.
    pub detail: String,
    /// Total occurrences of this kind in the kernel.
    pub count: u64,
}

/// The analysis of one kernel grid.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name (from [`gpu_sim::kernel::KernelGrid`]).
    pub name: String,
    /// Warps in the grid.
    pub warps: u64,
    /// Distinct 32-bit words accessed.
    pub sites: u64,
    /// Total dynamic accesses analyzed (lane-level).
    pub accesses: u64,
    /// Coalesced load/store sector transactions
    /// (via [`gpu_sim::isa::MemAccess::sectors`]).
    pub transactions: u64,
    /// Sectors written by ≥ 2 warps through ≥ 2 distinct words: no word
    /// conflict, but transaction-level interference (false sharing).
    /// Informational — sector-granular *hazard* classification would
    /// false-positive on legitimate adjacent-word layouts.
    pub shared_sectors: u64,
    /// Conflict findings, most-severe first.
    pub findings: Vec<Finding>,
    /// Well-formedness lints, deduplicated by kind.
    pub lints: Vec<Lint>,
}

/// A lint qualified with the kernel it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRecord {
    /// Kernel name within the benchmark.
    pub kernel: String,
    /// The deduplicated lint.
    pub lint: Lint,
}

/// The merged analysis of one benchmark (all its kernel launches).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (suite member name; allowlist key).
    pub name: String,
    /// Family label (`graph` / `conv` / `micro`).
    pub family: String,
    /// Number of kernel launches analyzed.
    pub kernels: u64,
    /// Total warps across kernels.
    pub warps: u64,
    /// Distinct words accessed, summed over kernels.
    pub sites: u64,
    /// Total lane-level accesses analyzed.
    pub accesses: u64,
    /// Coalesced load/store sector transactions.
    pub transactions: u64,
    /// False-sharing sectors, summed over kernels.
    pub shared_sectors: u64,
    /// Findings merged across kernels by kind, most-severe first.
    pub findings: Vec<Finding>,
    /// Lints with their kernel of origin, in kernel order.
    pub lints: Vec<LintRecord>,
}

impl BenchReport {
    /// Merges per-kernel reports into one benchmark report.
    pub fn from_kernels(
        name: impl Into<String>,
        family: impl Into<String>,
        kernels: &[KernelReport],
    ) -> Self {
        let mut findings: Vec<Finding> = Vec::new();
        let mut lints = Vec::new();
        let mut warps = 0;
        let mut sites = 0;
        let mut accesses = 0;
        let mut transactions = 0;
        let mut shared_sectors = 0;
        for k in kernels {
            warps += k.warps;
            sites += k.sites;
            accesses += k.accesses;
            transactions += k.transactions;
            shared_sectors += k.shared_sectors;
            for f in &k.findings {
                match findings.iter_mut().find(|m| m.kind == f.kind) {
                    Some(m) => m.merge(f),
                    None => findings.push(f.clone()),
                }
            }
            for l in &k.lints {
                lints.push(LintRecord {
                    kernel: k.name.clone(),
                    lint: l.clone(),
                });
            }
        }
        sort_findings(&mut findings);
        Self {
            name: name.into(),
            family: family.into(),
            kernels: kernels.len() as u64,
            warps,
            sites,
            accesses,
            transactions,
            shared_sectors,
            findings,
            lints,
        }
    }

    /// Sum of finding sites in the given class.
    pub fn class_sites(&self, class: Class) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.kind.class() == class)
            .map(|f| f.sites)
            .sum()
    }
}

/// A gating violation: a non-allowlisted hazard or lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Benchmark the violation came from.
    pub bench: String,
    /// The finding/lint label that failed the gate.
    pub label: String,
    /// Human-readable context.
    pub detail: String,
}

/// The whole-suite report: every benchmark, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Scale label the suite was generated at (`ci` / `paper`).
    pub scale: String,
    /// Per-benchmark reports, in suite order.
    pub benches: Vec<BenchReport>,
}

impl SuiteReport {
    /// Total finding sites per class across the suite.
    pub fn class_totals(&self) -> (u64, u64, u64) {
        let sum = |c| self.benches.iter().map(|b| b.class_sites(c)).sum();
        (
            sum(Class::Benign),
            sum(Class::WeakDetOk),
            sum(Class::Hazard),
        )
    }

    /// Every hazard finding and every lint not covered by `allow`.
    pub fn violations(&self, allow: &Allowlist) -> Vec<Violation> {
        let mut v = Vec::new();
        for b in &self.benches {
            for f in &b.findings {
                if f.kind.class() == Class::Hazard && !allow.allows(&b.name, f.kind.label()) {
                    v.push(Violation {
                        bench: b.name.clone(),
                        label: f.kind.label().to_string(),
                        detail: format!(
                            "{} sites, {} accesses, addrs {}",
                            f.sites,
                            f.accesses,
                            f.addr_range()
                        ),
                    });
                }
            }
            for l in &b.lints {
                if !allow.allows(&b.name, l.lint.kind.label()) {
                    v.push(Violation {
                        bench: b.name.clone(),
                        label: l.lint.kind.label().to_string(),
                        detail: format!(
                            "kernel {}: {} ({} occurrences)",
                            l.kernel, l.lint.detail, l.lint.count
                        ),
                    });
                }
            }
        }
        v
    }

    /// Count of hazard findings that *are* covered by the allowlist.
    pub fn allowlisted_hazards(&self, allow: &Allowlist) -> u64 {
        self.benches
            .iter()
            .flat_map(|b| b.findings.iter().map(move |f| (b, f)))
            .filter(|(b, f)| {
                f.kind.class() == Class::Hazard && allow.allows(&b.name, f.kind.label())
            })
            .count() as u64
    }

    /// Allowlist entries that suppress nothing in this report.
    ///
    /// An entry is *used* when it matches at least one hazard-class
    /// finding or one lint — the only things [`Self::violations`] gates
    /// on. Anything else is a stale exemption: the underlying race was
    /// fixed (or renamed) but the exemption lives on, silently ready to
    /// mask a future regression. `dab-analyze --suite` turns a non-empty
    /// result into its own exit code so CI keeps the allowlist minimal.
    pub fn stale_entries(&self, allow: &Allowlist) -> Vec<(String, String)> {
        allow
            .entries()
            .iter()
            .filter(|(bp, lp)| {
                !self.benches.iter().any(|b| {
                    let bench_hit = glob_match(bp, &b.name);
                    bench_hit
                        && (b.findings.iter().any(|f| {
                            f.kind.class() == Class::Hazard && glob_match(lp, f.kind.label())
                        }) || b.lints.iter().any(|l| glob_match(lp, l.lint.kind.label())))
                })
            })
            .cloned()
            .collect()
    }

    /// Renders the human-readable report (stable, byte-identical across
    /// runs for the same suite).
    pub fn render_text(&self, allow: &Allowlist) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dab-analyze: static trace determinism analysis (scale {})",
            self.scale
        );
        out.push('\n');

        let header = [
            "benchmark",
            "family",
            "kernels",
            "warps",
            "sites",
            "benign",
            "weak-det-ok",
            "hazard",
            "lints",
            "shared-sectors",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for b in &self.benches {
            rows.push(vec![
                b.name.clone(),
                b.family.clone(),
                b.kernels.to_string(),
                b.warps.to_string(),
                b.sites.to_string(),
                b.class_sites(Class::Benign).to_string(),
                b.class_sites(Class::WeakDetOk).to_string(),
                b.class_sites(Class::Hazard).to_string(),
                b.lints.len().to_string(),
                b.shared_sectors.to_string(),
            ]);
        }
        render_columns(&mut out, &header, &rows);

        let mut finding_lines = Vec::new();
        for b in &self.benches {
            for f in &b.findings {
                finding_lines.push(vec![
                    b.name.clone(),
                    f.kind.class().label().to_string(),
                    f.kind.label().to_string(),
                    format!("sites={}", f.sites),
                    format!("accesses={}", f.accesses),
                    format!("addrs={}", f.addr_range()),
                    format!("kernels={}", f.kernels),
                ]);
            }
        }
        out.push('\n');
        if finding_lines.is_empty() {
            out.push_str("findings: none\n");
        } else {
            out.push_str("findings:\n");
            let fh = ["benchmark", "class", "kind", "", "", "", ""];
            render_columns(&mut out, &fh, &finding_lines);
        }

        for b in &self.benches {
            for l in &b.lints {
                let _ = writeln!(
                    out,
                    "lint: {} kernel {}: {} — {} ({} occurrences)",
                    b.name,
                    l.kernel,
                    l.lint.kind.label(),
                    l.lint.detail,
                    l.lint.count
                );
            }
        }

        let (benign, weak, hazard) = self.class_totals();
        out.push('\n');
        let _ = writeln!(
            out,
            "totals: {benign} benign, {weak} weak-det-ok, {hazard} hazard sites"
        );
        let violations = self.violations(allow);
        if violations.is_empty() {
            let _ = writeln!(
                out,
                "violations: none ({} hazard finding(s) allowlisted)",
                self.allowlisted_hazards(allow)
            );
        } else {
            let _ = writeln!(out, "violations ({}):", violations.len());
            for v in &violations {
                let _ = writeln!(out, "  {} {}: {}", v.bench, v.label, v.detail);
            }
        }
        out
    }

    /// Renders the JSON document (hand-rolled, stable field order — same
    /// style as `crates/bench/src/results.rs`).
    pub fn render_json(&self, allow: &Allowlist) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"target\": {},", json_str("dab_analyze"));
        let _ = writeln!(out, "  \"scale\": {},", json_str(&self.scale));
        out.push_str("  \"benches\": [");
        for (i, b) in self.benches.iter().enumerate() {
            let comma = if i + 1 < self.benches.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{ \"name\": {}, \"family\": {}, \"kernels\": {}, \"warps\": {}, \
                 \"sites\": {}, \"accesses\": {}, \"transactions\": {}, \
                 \"shared_sectors\": {},",
                json_str(&b.name),
                json_str(&b.family),
                b.kernels,
                b.warps,
                b.sites,
                b.accesses,
                b.transactions,
                b.shared_sectors,
            );
            out.push_str("\n      \"findings\": [");
            for (j, f) in b.findings.iter().enumerate() {
                let fc = if j + 1 < b.findings.len() { "," } else { "" };
                let _ = write!(
                    out,
                    "\n        {{ \"class\": {}, \"kind\": {}, \"sites\": {}, \
                     \"accesses\": {}, \"addr_min\": {}, \"addr_max\": {}, \
                     \"kernels\": {} }}{fc}",
                    json_str(f.kind.class().label()),
                    json_str(f.kind.label()),
                    f.sites,
                    f.accesses,
                    json_addr(f.addr_min, f.addr_min > f.addr_max),
                    json_addr(f.addr_max, f.addr_min > f.addr_max),
                    f.kernels,
                );
            }
            out.push_str(if b.findings.is_empty() {
                "],"
            } else {
                "\n      ],"
            });
            out.push_str("\n      \"lints\": [");
            for (j, l) in b.lints.iter().enumerate() {
                let lc = if j + 1 < b.lints.len() { "," } else { "" };
                let _ = write!(
                    out,
                    "\n        {{ \"kernel\": {}, \"kind\": {}, \"detail\": {}, \
                     \"count\": {} }}{lc}",
                    json_str(&l.kernel),
                    json_str(l.lint.kind.label()),
                    json_str(&l.lint.detail),
                    l.lint.count,
                );
            }
            out.push_str(if b.lints.is_empty() {
                "] }"
            } else {
                "\n      ] }"
            });
            out.push_str(comma);
        }
        out.push_str(if self.benches.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let (benign, weak, hazard) = self.class_totals();
        let _ = writeln!(
            out,
            "  \"totals\": {{ \"benign\": {benign}, \"weak_det_ok\": {weak}, \
             \"hazard\": {hazard} }},"
        );
        let violations = self.violations(allow);
        out.push_str("  \"violations\": [");
        for (i, v) in violations.iter().enumerate() {
            let comma = if i + 1 < violations.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{ \"bench\": {}, \"label\": {}, \"detail\": {} }}{comma}",
                json_str(&v.bench),
                json_str(&v.label),
                json_str(&v.detail),
            );
        }
        out.push_str(if violations.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Aligned-column rendering (two spaces between columns).
fn render_columns(out: &mut String, header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        if i > 0 {
            line.push_str("  ");
        }
        let _ = write!(line, "{:width$}", h, width = widths[i]);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{:width$}", cell, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
}

/// The CI allowlist: which (benchmark, finding-label) pairs may ship.
///
/// File syntax: one `<benchmark> <label>` pair per line, `*` wildcards in
/// either field, `#` comments. Entries suppress *gating*, never reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// An allowlist permitting nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses allowlist text; rejects malformed (≠ 2 field) lines.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 2 {
                return Err(format!(
                    "allowlist line {}: expected `<benchmark> <finding>`, got {:?}",
                    lineno + 1,
                    raw
                ));
            }
            entries.push((fields[0].to_string(), fields[1].to_string()));
        }
        Ok(Self { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `(bench, label)` is covered by any entry.
    pub fn allows(&self, bench: &str, label: &str) -> bool {
        self.entries
            .iter()
            .any(|(b, l)| glob_match(b, bench) && glob_match(l, label))
    }

    /// The `(benchmark-pattern, finding-pattern)` entries, in file order.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }
}

/// Minimal `*`-wildcard matcher (no character classes, `*` matches any
/// run of characters including the empty one).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'*') => inner(&p[1..], t) || (!t.is_empty() && inner(p, &t[1..])),
            Some(&c) => t.first() == Some(&c) && inner(&p[1..], &t[1..]),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

/// JSON string literal (same escaping as `crates/bench/src/results.rs`).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Addresses as hex strings (survive doubles-only JSON readers); `null`
/// for site-less findings like barrier divergence.
fn json_addr(addr: u64, absent: bool) -> String {
    if absent {
        "null".to_string()
    } else {
        format!("\"0x{addr:08x}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classes() {
        assert_eq!(ConflictKind::CommutativeRedRace.class(), Class::Benign);
        assert_eq!(ConflictKind::FpRedRace.class(), Class::WeakDetOk);
        for k in ALL_KINDS {
            if k != ConflictKind::CommutativeRedRace && k != ConflictKind::FpRedRace {
                assert_eq!(k.class(), Class::Hazard, "{k:?}");
            }
        }
    }

    #[test]
    fn labels_are_unique_and_kebab() {
        let labels: Vec<&str> = ALL_KINDS.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for l in labels {
            assert!(l
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Class::Hazard > Class::WeakDetOk);
        assert!(Class::WeakDetOk > Class::Benign);
        let mut f = vec![
            Finding::new(ConflictKind::CommutativeRedRace),
            Finding::new(ConflictKind::StoreStore),
            Finding::new(ConflictKind::FpRedRace),
        ];
        sort_findings(&mut f);
        assert_eq!(f[0].kind, ConflictKind::StoreStore);
        assert_eq!(f[2].kind, ConflictKind::CommutativeRedRace);
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("micro_*", "micro_ticket_counter"));
        assert!(!glob_match("micro_*", "BC_1k"));
        assert!(glob_match("*-race", "atom-return-race"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXbYY"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn allowlist_parse_and_match() {
        let a = Allowlist::parse(
            "# comment\n\nmicro_ticket_counter atom-return-race # trailing\nBC_* store-*\n",
        )
        .expect("parses");
        assert_eq!(a.len(), 2);
        assert!(a.allows("micro_ticket_counter", "atom-return-race"));
        assert!(!a.allows("micro_ticket_counter", "store-store"));
        assert!(a.allows("BC_1k", "store-load"));
        assert!(Allowlist::parse("just-one-field").is_err());
        assert!(Allowlist::empty().is_empty());
    }

    #[test]
    fn stale_allowlist_entries_are_detected() {
        let mut hazard = Finding::new(ConflictKind::AtomReturnRace);
        hazard.sites = 1;
        let racy = BenchReport {
            name: "micro_ticket_counter".to_string(),
            family: "micro".to_string(),
            kernels: 1,
            warps: 4,
            sites: 1,
            accesses: 8,
            transactions: 0,
            shared_sectors: 0,
            findings: vec![hazard],
            lints: Vec::new(),
        };
        let mut clean = racy.clone();
        clean.name = "micro_lock_ts".to_string();
        clean.findings.clear();
        let report = SuiteReport {
            scale: "ci".to_string(),
            benches: vec![racy, clean],
        };

        // Used entry: matches a live hazard.
        let a = Allowlist::parse("micro_ticket_counter atom-return-race\n").unwrap();
        assert!(report.stale_entries(&a).is_empty());
        // Wildcards count as used as long as they hit something.
        let a = Allowlist::parse("micro_* atom-*\n").unwrap();
        assert!(report.stale_entries(&a).is_empty());
        // Bench exists but no longer has the finding: stale.
        let a = Allowlist::parse("micro_lock_ts atom-return-race\n").unwrap();
        assert_eq!(
            report.stale_entries(&a),
            vec![("micro_lock_ts".to_string(), "atom-return-race".to_string())]
        );
        // Bench not in the suite at all: stale.
        let a = Allowlist::parse("gone_bench *\n").unwrap();
        assert_eq!(report.stale_entries(&a).len(), 1);
        // Non-hazard findings don't keep an entry alive (they never gate).
        let a = Allowlist::parse("micro_ticket_counter fp-red-race\n").unwrap();
        assert_eq!(report.stale_entries(&a).len(), 1);
    }

    #[test]
    fn finding_merge_folds_ranges() {
        let mut a = Finding {
            kind: ConflictKind::FpRedRace,
            sites: 2,
            accesses: 10,
            addr_min: 0x100,
            addr_max: 0x200,
            kernels: 1,
        };
        let b = Finding {
            kind: ConflictKind::FpRedRace,
            sites: 3,
            accesses: 5,
            addr_min: 0x80,
            addr_max: 0x180,
            kernels: 1,
        };
        a.merge(&b);
        assert_eq!(a.sites, 5);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.addr_min, 0x80);
        assert_eq!(a.addr_max, 0x200);
        assert_eq!(a.kernels, 2);
    }
}
