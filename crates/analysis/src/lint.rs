//! Well-formedness linting of lowered traces.
//!
//! Workload generators hand the simulator fully-lowered warp programs; a
//! malformed trace (out-of-range lanes, misaligned words, CTA ids that
//! disagree with their grid position) would silently skew both timing and
//! determinism results. The linter re-checks the invariants every
//! generator is supposed to uphold, so a broken generator fails
//! `dab-analyze` in CI instead of producing quietly-wrong figures.
//!
//! Lints are deduplicated per kind: each [`Lint`] carries the first
//! offending location and a total occurrence count, keeping reports
//! bounded even for a generator that mis-lowers every instruction.

use std::collections::BTreeSet;

use gpu_sim::isa::Instr;
use gpu_sim::kernel::KernelGrid;

use crate::report::{Lint, LintKind};

/// Accumulates deduplicated lints.
#[derive(Debug, Default)]
struct Lints {
    found: Vec<Lint>,
}

impl Lints {
    fn push(&mut self, kind: LintKind, detail: impl FnOnce() -> String) {
        match self.found.iter_mut().find(|l| l.kind == kind) {
            Some(l) => l.count += 1,
            None => self.found.push(Lint {
                kind,
                detail: detail(),
                count: 1,
            }),
        }
    }
}

/// Lints one kernel grid; returns deduplicated lints sorted by kind.
///
/// # Examples
///
/// ```
/// use analysis::lint::lint_kernel;
/// use analysis::report::LintKind;
/// use gpu_sim::kernel::KernelGrid;
///
/// let empty = KernelGrid::new("nothing", vec![]);
/// let lints = lint_kernel(&empty);
/// assert_eq!(lints[0].kind, LintKind::EmptyKernel);
/// ```
pub fn lint_kernel(grid: &KernelGrid) -> Vec<Lint> {
    let mut lints = Lints::default();
    if grid.ctas.is_empty() {
        lints.push(LintKind::EmptyKernel, || {
            format!("kernel {} has no CTAs", grid.name)
        });
    }
    let mut lock_words: BTreeSet<u64> = BTreeSet::new();
    let mut data_words: BTreeSet<u64> = BTreeSet::new();

    for (i, cta) in grid.ctas.iter().enumerate() {
        if cta.cta_id != i {
            lints.push(LintKind::CtaIdMismatch, || {
                format!("ctas[{i}] has cta_id {}", cta.cta_id)
            });
        }
        if cta.warps.is_empty() {
            lints.push(LintKind::EmptyKernel, || format!("cta {i} has no warps"));
        }
        for (w, warp) in cta.warps.iter().enumerate() {
            if warp.instrs.is_empty() {
                lints.push(LintKind::EmptyProgram, || {
                    format!("cta {i} warp {w} has no instructions")
                });
            }
            for instr in &warp.instrs {
                match instr {
                    Instr::Load { accesses } | Instr::Store { accesses } => {
                        for acc in accesses {
                            if acc.addrs.len() > warp.active_lanes {
                                lints.push(LintKind::TooManyLaneAddrs, || {
                                    format!(
                                        "cta {i} warp {w}: {} addresses for {} lanes",
                                        acc.addrs.len(),
                                        warp.active_lanes
                                    )
                                });
                            }
                            for &addr in &acc.addrs {
                                if addr % 4 != 0 {
                                    lints.push(LintKind::MisalignedAddress, || {
                                        format!("cta {i} warp {w}: address 0x{addr:x}")
                                    });
                                }
                                data_words.insert(addr >> 2);
                            }
                        }
                    }
                    Instr::Red { accesses, .. }
                    | Instr::Atom { accesses, .. }
                    | Instr::LockedSection { accesses, .. } => {
                        let mut lanes_seen: BTreeSet<u8> = BTreeSet::new();
                        for acc in accesses {
                            if acc.lane as usize >= warp.active_lanes {
                                lints.push(LintKind::LaneOutOfRange, || {
                                    format!(
                                        "cta {i} warp {w}: lane {} of {} active",
                                        acc.lane, warp.active_lanes
                                    )
                                });
                            }
                            if !lanes_seen.insert(acc.lane) {
                                lints.push(LintKind::DuplicateLane, || {
                                    format!("cta {i} warp {w}: lane {} repeated", acc.lane)
                                });
                            }
                            if acc.addr % 4 != 0 {
                                lints.push(LintKind::MisalignedAddress, || {
                                    format!("cta {i} warp {w}: address 0x{:x}", acc.addr)
                                });
                            }
                            data_words.insert(acc.addr >> 2);
                        }
                        if let Instr::LockedSection { lock_addr, .. } = instr {
                            if lock_addr % 4 != 0 {
                                lints.push(LintKind::MisalignedAddress, || {
                                    format!("cta {i} warp {w}: lock address 0x{lock_addr:x}")
                                });
                            }
                            lock_words.insert(lock_addr >> 2);
                        }
                    }
                    Instr::Alu { .. } | Instr::Bar | Instr::Fence => {}
                }
            }
        }
    }

    for &word in lock_words.intersection(&data_words) {
        lints.push(LintKind::LockAliasesData, || {
            format!("lock word 0x{:x} also accessed as data", word << 2)
        });
    }

    let mut out = lints.found;
    out.sort_by_key(|l| l.kind);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::isa::{AtomicAccess, AtomicOp, LockKind, MemAccess, Value, WarpProgram};
    use gpu_sim::kernel::CtaSpec;

    fn kinds(grid: &KernelGrid) -> Vec<LintKind> {
        lint_kernel(grid).iter().map(|l| l.kind).collect()
    }

    fn grid_of(instrs: Vec<Instr>, lanes: usize) -> KernelGrid {
        KernelGrid::new(
            "lint",
            vec![CtaSpec::new(0, vec![WarpProgram::new(instrs, lanes)])],
        )
    }

    #[test]
    fn clean_trace_has_no_lints() {
        let grid = grid_of(
            vec![
                Instr::Load {
                    accesses: vec![MemAccess::per_lane_f32(0x1000, 32)],
                },
                Instr::Red {
                    op: AtomicOp::AddF32,
                    accesses: (0..32)
                        .map(|l| AtomicAccess::new(l, 0x2000, Value::F32(1.0)))
                        .collect(),
                },
            ],
            32,
        );
        assert!(kinds(&grid).is_empty());
    }

    #[test]
    fn lane_out_of_range_and_duplicates() {
        let grid = grid_of(
            vec![Instr::Red {
                op: AtomicOp::AddF32,
                accesses: vec![
                    AtomicAccess::new(0, 0x2000, Value::F32(1.0)),
                    AtomicAccess::new(0, 0x2004, Value::F32(1.0)),
                    AtomicAccess::new(40, 0x2008, Value::F32(1.0)),
                ],
            }],
            32,
        );
        let ks = kinds(&grid);
        assert!(ks.contains(&LintKind::LaneOutOfRange));
        assert!(ks.contains(&LintKind::DuplicateLane));
    }

    #[test]
    fn too_many_lane_addrs() {
        let grid = grid_of(
            vec![Instr::Load {
                accesses: vec![MemAccess::per_lane_f32(0x1000, 32)],
            }],
            16,
        );
        assert_eq!(kinds(&grid), vec![LintKind::TooManyLaneAddrs]);
    }

    #[test]
    fn misaligned_addresses() {
        let grid = grid_of(
            vec![Instr::Store {
                accesses: vec![MemAccess {
                    addrs: vec![0x1001],
                }],
            }],
            1,
        );
        assert_eq!(kinds(&grid), vec![LintKind::MisalignedAddress]);
    }

    #[test]
    fn empty_shapes() {
        assert_eq!(
            kinds(&KernelGrid::new("e", vec![])),
            vec![LintKind::EmptyKernel]
        );
        assert_eq!(
            kinds(&KernelGrid::new("e", vec![CtaSpec::new(0, vec![])])),
            vec![LintKind::EmptyKernel]
        );
        assert_eq!(kinds(&grid_of(vec![], 32)), vec![LintKind::EmptyProgram]);
    }

    #[test]
    fn cta_id_mismatch() {
        let grid = KernelGrid::new(
            "ids",
            vec![CtaSpec::new(
                7,
                vec![WarpProgram::new(vec![Instr::Bar], 32)],
            )],
        );
        assert_eq!(kinds(&grid), vec![LintKind::CtaIdMismatch]);
    }

    #[test]
    fn lock_aliasing_data() {
        let grid = grid_of(
            vec![
                Instr::LockedSection {
                    kind: LockKind::TestAndSet,
                    lock_addr: 0x4000,
                    op: AtomicOp::AddF32,
                    accesses: vec![AtomicAccess::new(0, 0x2000, Value::F32(1.0))],
                    critical_cycles: 4,
                },
                Instr::Load {
                    accesses: vec![MemAccess {
                        addrs: vec![0x4000],
                    }],
                },
            ],
            1,
        );
        assert_eq!(kinds(&grid), vec![LintKind::LockAliasesData]);
    }

    #[test]
    fn lints_deduplicate_with_counts() {
        let grid = grid_of(
            vec![Instr::Store {
                accesses: vec![MemAccess {
                    addrs: vec![0x1001, 0x1002, 0x1003],
                }],
            }],
            4,
        );
        let lints = lint_kernel(&grid);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::MisalignedAddress);
        assert_eq!(lints[0].count, 3);
        assert!(lints[0].detail.contains("0x1001"), "{}", lints[0].detail);
    }
}
