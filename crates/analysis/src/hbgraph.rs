//! Exportable happens-before graph and schedule choice points.
//!
//! [`crate::conflict`] classifies races and throws the group structure
//! away; this module keeps it. A [`HbGraph`] is the per-kernel view of
//! the ordering structure over *contended words*: nodes are the access
//! groups of every word touched by more than one warp, edges are the
//! happens-before rule that orders a pair (program order, barrier,
//! ticket lock), and the unordered conflicting pairs become explicit
//! [`ChoicePoint`]s — the word-granular units of schedule freedom.
//!
//! Choice points are what turn the analyzer into a model-checking
//! front-end (`dab-explore`): words whose choice points are all
//! order-invariant under DAB (class below [`Class::Hazard`]) cannot
//! produce more than one outcome, so a kernel with **zero hazard choice
//! points is statically proven single-class** and the explorer can skip
//! its schedule enumeration entirely. Racy kernels get a finite list of
//! independent choice points instead of an opaque seed space.
//!
//! Serialization (JSON and Graphviz DOT) is hand-rolled and byte-stable:
//! nodes are sorted by `(word, walk order)` and words ascending, so the
//! same trace always produces the same bytes — snapshot-tested like the
//! golden suite reports.

use std::fmt::Write as _;

use dab_workloads::suite::Benchmark;
use gpu_sim::kernel::KernelGrid;

use crate::conflict::{
    classify_pair, group_self_unordered, groups_unordered, walk_kernel, AccessCat,
};
use crate::report::{Class, ConflictKind};

/// One access group: every access to `word` sharing a category and
/// happens-before context. Mirrors the analyzer's internal grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbNode {
    /// Byte address of the 32-bit word.
    pub addr: u64,
    /// Access category label (`load`, `store`, `red.add.f32`, …).
    pub cat: String,
    /// CTA index.
    pub cta: u32,
    /// Barrier phase within the CTA.
    pub phase: u32,
    /// Lock word guarding the accesses, if inside a `LockedSection`.
    pub lock: Option<u64>,
    /// Witness warp (first seen); the group's only warp unless
    /// `multi_warp`.
    pub warp: u32,
    /// Whether the group spans several warps.
    pub multi_warp: bool,
    /// Dynamic access count collapsed into this group.
    pub count: u64,
}

/// Why two groups are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbRule {
    /// Same warp, single-warp groups: program order.
    Program,
    /// Same CTA, different barrier phases.
    Barrier,
    /// Critical sections guarding the same lock (ticket order).
    Lock,
}

impl HbRule {
    /// Stable label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            HbRule::Program => "program",
            HbRule::Barrier => "barrier",
            HbRule::Lock => "lock",
        }
    }
}

/// A happens-before edge between two nodes of one word (undirected: the
/// rule symmetrically orders every access pair drawn from the groups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbEdge {
    /// Index into [`HbGraph::nodes`].
    pub a: usize,
    /// Index into [`HbGraph::nodes`] (`a < b`).
    pub b: usize,
    /// The ordering rule.
    pub rule: HbRule,
}

/// One word with at least one unordered conflicting pair: an independent
/// unit of schedule freedom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Byte address of the contended word.
    pub addr: u64,
    /// Conflict kinds present, in [`crate::report::ALL_KINDS`] order.
    pub kinds: Vec<ConflictKind>,
    /// Number of unordered group pairs (self-pairs included).
    pub pairs: u64,
}

impl ChoicePoint {
    /// The worst class among the kinds present.
    pub fn class(&self) -> Class {
        self.kinds
            .iter()
            .map(|k| k.class())
            .max_by_key(|c| match c {
                Class::Benign => 0,
                Class::WeakDetOk => 1,
                Class::Hazard => 2,
            })
            .unwrap_or(Class::Benign)
    }
}

/// The happens-before graph of one kernel over its contended words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbGraph {
    /// Kernel (grid) name.
    pub kernel: String,
    /// Access groups, sorted by `(addr, walk order)`. Only words with
    /// cross-warp structure appear (≥ 2 groups or a multi-warp group):
    /// single-warp words are ordered by program order trivially and
    /// would bloat the export without adding information.
    pub nodes: Vec<HbNode>,
    /// Happens-before edges between same-word nodes, `(a, b)` ascending.
    pub edges: Vec<HbEdge>,
    /// Words with unordered conflicting pairs, addresses ascending.
    pub choice_points: Vec<ChoicePoint>,
}

fn op_label(op: gpu_sim::isa::AtomicOp) -> &'static str {
    use gpu_sim::isa::AtomicOp::*;
    match op {
        AddF32 => "add.f32",
        AddU32 => "add.u32",
        MaxU32 => "max.u32",
        MinU32 => "min.u32",
        MaxF32 => "max.f32",
        ExchB32 => "exch.b32",
    }
}

fn cat_label(cat: AccessCat) -> String {
    match cat {
        AccessCat::Load => "load".to_string(),
        AccessCat::Store => "store".to_string(),
        AccessCat::Red(op) => format!("red.{}", op_label(op)),
        AccessCat::Atom(op) => format!("atom.{}", op_label(op)),
    }
}

impl HbGraph {
    /// Builds the graph for one kernel grid.
    pub fn of_kernel(grid: &KernelGrid) -> Self {
        let (walk, _) = walk_kernel(grid);
        let mut words: Vec<u64> = walk
            .words
            .iter()
            .filter(|(_, groups)| groups.len() >= 2 || groups.iter().any(|g| g.multi_warp))
            .map(|(&w, _)| w)
            .collect();
        words.sort_unstable();

        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut choice_points = Vec::new();
        for &word in &words {
            let groups = &walk.words[&word];
            let base = nodes.len();
            for g in groups {
                nodes.push(HbNode {
                    addr: word << 2,
                    cat: cat_label(g.cat),
                    cta: g.ctx.cta,
                    phase: g.ctx.phase,
                    lock: g.ctx.lock.map(|l| l << 2),
                    warp: g.ctx.warp,
                    multi_warp: g.multi_warp,
                    count: g.count,
                });
            }
            let mut kinds: Vec<ConflictKind> = Vec::new();
            let mut pairs = 0u64;
            for i in 0..groups.len() {
                for j in i..groups.len() {
                    let unordered = if i == j {
                        group_self_unordered(&groups[i])
                    } else {
                        groups_unordered(&groups[i], &groups[j])
                    };
                    if unordered {
                        if let Some(k) = classify_pair(groups[i].cat, groups[j].cat) {
                            pairs += 1;
                            if !kinds.contains(&k) {
                                kinds.push(k);
                            }
                        }
                        continue;
                    }
                    if i == j {
                        continue;
                    }
                    // Name the rule that ordered the pair, mirroring
                    // `conflict::groups_unordered` clause by clause.
                    let (a, b) = (&groups[i], &groups[j]);
                    let rule = if a.ctx.lock.is_some() && a.ctx.lock == b.ctx.lock {
                        HbRule::Lock
                    } else if a.ctx.cta == b.ctx.cta && a.ctx.phase != b.ctx.phase {
                        HbRule::Barrier
                    } else {
                        HbRule::Program
                    };
                    edges.push(HbEdge {
                        a: base + i,
                        b: base + j,
                        rule,
                    });
                }
            }
            if !kinds.is_empty() {
                kinds.sort_by_key(|k| {
                    crate::report::ALL_KINDS
                        .iter()
                        .position(|x| x == k)
                        .expect("kind is in ALL_KINDS")
                });
                choice_points.push(ChoicePoint {
                    addr: word << 2,
                    kinds,
                    pairs,
                });
            }
        }
        Self {
            kernel: grid.name.clone(),
            nodes,
            edges,
            choice_points,
        }
    }

    /// Graphs for every kernel launch of a benchmark, in launch order.
    pub fn of_benchmark(bench: &Benchmark) -> Vec<Self> {
        bench.kernels.iter().map(Self::of_kernel).collect()
    }

    /// Number of choice points whose class is [`Class::Hazard`] — the
    /// only ones that can split the outcome space under DAB. Zero means
    /// the kernel is statically proven single-class.
    pub fn hazard_choice_points(&self) -> usize {
        self.choice_points
            .iter()
            .filter(|c| c.class() == Class::Hazard)
            .count()
    }

    /// Byte-stable JSON document (hand-rolled, same idiom as
    /// [`crate::report::SuiteReport::render_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"kernel\": {},", json_str(&self.kernel));
        out.push_str("  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            let comma = if i + 1 < self.nodes.len() { "," } else { "" };
            let lock = match n.lock {
                Some(l) => format!("\"{l:#x}\""),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{ \"id\": {i}, \"addr\": \"{:#x}\", \"cat\": {}, \"cta\": {}, \
                 \"phase\": {}, \"lock\": {lock}, \"warp\": {}, \"multi_warp\": {}, \
                 \"count\": {} }}{comma}",
                n.addr,
                json_str(&n.cat),
                n.cta,
                n.phase,
                n.warp,
                n.multi_warp,
                n.count,
            );
        }
        out.push_str(if self.nodes.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            let comma = if i + 1 < self.edges.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{ \"a\": {}, \"b\": {}, \"rule\": {} }}{comma}",
                e.a,
                e.b,
                json_str(e.rule.label()),
            );
        }
        out.push_str(if self.edges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"choice_points\": [");
        for (i, c) in self.choice_points.iter().enumerate() {
            let comma = if i + 1 < self.choice_points.len() {
                ","
            } else {
                ""
            };
            let kinds: Vec<String> = c.kinds.iter().map(|k| json_str(k.label())).collect();
            let _ = write!(
                out,
                "\n    {{ \"addr\": \"{:#x}\", \"class\": {}, \"kinds\": [{}], \
                 \"pairs\": {} }}{comma}",
                c.addr,
                json_str(c.class().label()),
                kinds.join(", "),
                c.pairs,
            );
        }
        out.push_str(if self.choice_points.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Byte-stable Graphviz DOT rendering for human debugging: one
    /// subgraph cluster per contended word, solid edges for
    /// happens-before rules, red dashed self/pair markers for choice
    /// points.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.kernel.replace('"', "'"));
        out.push_str("  node [shape=box, fontsize=10];\n");
        // Group nodes per word for cluster rendering.
        let mut word_ranges: Vec<(u64, usize, usize)> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match word_ranges.last_mut() {
                Some((addr, _, end)) if *addr == n.addr => *end = i + 1,
                _ => word_ranges.push((n.addr, i, i + 1)),
            }
        }
        for (addr, lo, hi) in &word_ranges {
            let _ = writeln!(out, "  subgraph \"cluster_{addr:#x}\" {{");
            let _ = writeln!(out, "    label=\"word {addr:#x}\";");
            for i in *lo..*hi {
                let n = &self.nodes[i];
                let warp = if n.multi_warp {
                    format!("warps {}+", n.warp)
                } else {
                    format!("warp {}", n.warp)
                };
                let lock = match n.lock {
                    Some(l) => format!(" lock={l:#x}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    n{i} [label=\"{} cta={} ph={} {}{}\\nx{}\"];",
                    n.cat, n.cta, n.phase, warp, lock, n.count
                );
            }
            out.push_str("  }\n");
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\"];",
                e.a,
                e.b,
                e.rule.label()
            );
        }
        for c in &self.choice_points {
            let kinds: Vec<&str> = c.kinds.iter().map(|k| k.label()).collect();
            let _ = writeln!(
                out,
                "  \"cp_{addr:#x}\" [shape=ellipse, color=red, \
                 label=\"choice point {addr:#x}\\n{} ({} pairs)\"];",
                kinds.join(","),
                c.pairs,
                addr = c.addr,
            );
        }
        out.push_str("}\n");
        out
    }
}

/// JSON string literal (same escaping as [`crate::report`]).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dab_workloads::scale::Scale;
    use dab_workloads::suite::micro_suite;
    use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
    use gpu_sim::kernel::CtaSpec;

    fn micro(name: &str) -> Benchmark {
        micro_suite(Scale::Ci)
            .into_iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("{name} in micro suite"))
    }

    #[test]
    fn hazard_free_micro_benches_have_no_hazard_choice_points() {
        for name in [
            "micro_atomic_sum",
            "micro_lock_ts",
            "micro_lock_bo",
            "micro_lock_tts",
            "micro_order_sensitive",
        ] {
            for g in HbGraph::of_benchmark(&micro(name)) {
                assert_eq!(g.hazard_choice_points(), 0, "{name}/{}", g.kernel);
            }
        }
    }

    #[test]
    fn ticket_counter_has_exactly_one_hazard_choice_point() {
        let graphs = HbGraph::of_benchmark(&micro("micro_ticket_counter"));
        let hazards: usize = graphs.iter().map(HbGraph::hazard_choice_points).sum();
        assert_eq!(hazards, 1, "one shared cursor word");
        let g = graphs
            .iter()
            .find(|g| g.hazard_choice_points() > 0)
            .unwrap();
        let cp = g
            .choice_points
            .iter()
            .find(|c| c.class() == Class::Hazard)
            .unwrap();
        assert!(cp.kinds.contains(&ConflictKind::AtomReturnRace));
        assert!(cp.pairs >= 1);
    }

    #[test]
    fn barrier_and_lock_edges_are_named() {
        let store = |addr| Instr::Store {
            accesses: vec![gpu_sim::isa::MemAccess { addrs: vec![addr] }],
        };
        // Two warps separated by a barrier → one barrier edge, no choice
        // points.
        let grid = KernelGrid::new(
            "bar",
            vec![CtaSpec::new(
                0,
                vec![
                    WarpProgram::new(vec![store(0x100), Instr::Bar], 1),
                    WarpProgram::new(vec![Instr::Bar, store(0x100)], 1),
                ],
            )],
        );
        let g = HbGraph::of_kernel(&grid);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].rule, HbRule::Barrier);
        assert!(g.choice_points.is_empty());

        // Same-lock critical sections across CTAs → lock edge.
        let locked = |cta: usize| {
            CtaSpec::new(
                cta,
                vec![WarpProgram::new(
                    vec![Instr::LockedSection {
                        kind: gpu_sim::isa::LockKind::TestAndSet,
                        lock_addr: 0x4000,
                        op: AtomicOp::AddF32,
                        accesses: vec![AtomicAccess::new(0, 0x100, Value::F32(1.0))],
                        critical_cycles: 4,
                    }],
                    1,
                )],
            )
        };
        let grid = KernelGrid::new("locked", vec![locked(0), locked(1)]);
        let g = HbGraph::of_kernel(&grid);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].rule, HbRule::Lock);
        assert!(g.choice_points.is_empty());
    }

    #[test]
    fn choice_points_capture_races() {
        let atom = |addr| Instr::Atom {
            op: AtomicOp::AddU32,
            accesses: vec![AtomicAccess::new(0, addr, Value::U32(1))],
        };
        let grid = KernelGrid::new(
            "racy",
            vec![
                CtaSpec::new(0, vec![WarpProgram::new(vec![atom(0x100)], 1)]),
                CtaSpec::new(1, vec![WarpProgram::new(vec![atom(0x100)], 1)]),
            ],
        );
        let g = HbGraph::of_kernel(&grid);
        assert_eq!(g.choice_points.len(), 1);
        assert_eq!(g.choice_points[0].addr, 0x100);
        assert_eq!(g.choice_points[0].kinds, vec![ConflictKind::AtomReturnRace]);
        assert_eq!(g.hazard_choice_points(), 1);
    }

    #[test]
    fn serialization_is_stable() {
        let b = micro("micro_ticket_counter");
        let a1: Vec<String> = HbGraph::of_benchmark(&b)
            .iter()
            .map(HbGraph::to_json)
            .collect();
        let a2: Vec<String> = HbGraph::of_benchmark(&b)
            .iter()
            .map(HbGraph::to_json)
            .collect();
        assert_eq!(a1, a2);
        let d1: Vec<String> = HbGraph::of_benchmark(&b)
            .iter()
            .map(HbGraph::to_dot)
            .collect();
        let d2: Vec<String> = HbGraph::of_benchmark(&b)
            .iter()
            .map(HbGraph::to_dot)
            .collect();
        assert_eq!(d1, d2);
    }
}
