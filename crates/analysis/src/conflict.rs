//! Word-granular conflict detection and hazard classification.
//!
//! The detector walks a lowered [`KernelGrid`] once, bucketing every
//! lane-level access by its 32-bit **word** (`addr >> 2`) and its
//! happens-before context ([`crate::hb::AccessCtx`]). Accesses sharing
//! `(category, cta, phase, lock)` collapse into one internal group, so the
//! per-word state stays proportional to the kernel's *ordering structure*,
//! not its dynamic access count. A word races iff two of its groups (or
//! one multi-warp group with itself) are unordered; the racing category
//! pair picks the [`ConflictKind`].
//!
//! **Why word-granular and not sector-granular?** Hazards are classified
//! at word granularity deliberately: real workloads legitimately place
//! unrelated words in one 32-byte sector (BC's per-level `sigma` cells,
//! conv's region-strided gradient slices), and sector-granular
//! classification would report those as races. Sector-level interference
//! is still measured — [`KernelReport::shared_sectors`] counts sectors
//! written by several warps through distinct words (false sharing), and
//! [`KernelReport::transactions`] reuses [`MemAccess::sectors`] to count
//! the coalesced transactions the baseline memory system would issue —
//! but neither gates CI.

use std::collections::HashMap;

use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, MemAccess, OrderingEffect};
use gpu_sim::kernel::KernelGrid;

use crate::hb::AccessCtx;
use crate::lint;
use crate::report::{sort_findings, ConflictKind, Finding, KernelReport};

/// Sector granularity (bytes) for the transaction/false-sharing passes;
/// matches the memory system's 32-byte sectors.
pub const SECTOR_BYTES: u64 = 32;

/// What kind of access touched a word (the conflict-matrix axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessCat {
    /// Plain global load.
    Load,
    /// Plain global store.
    Store,
    /// Reduction atomic (no return value); includes the reductions inside
    /// `LockedSection` critical sections.
    Red(AtomicOp),
    /// Value-returning atomic.
    Atom(AtomicOp),
}

impl AccessCat {
    /// Whether the access mutates memory.
    pub fn is_write(self) -> bool {
        !matches!(self, AccessCat::Load)
    }
}

/// Classifies one unordered conflicting pair of access categories.
///
/// Returns `None` for non-conflicting pairs (load/load). The matrix is
/// symmetric; see DESIGN.md for the taxonomy table.
pub fn classify_pair(a: AccessCat, b: AccessCat) -> Option<ConflictKind> {
    use AccessCat::*;
    match (a, b) {
        (Load, Load) => None,
        (Store, Store) => Some(ConflictKind::StoreStore),
        (Load, Store) | (Store, Load) => Some(ConflictKind::StoreLoad),
        (Load, Red(_)) | (Red(_), Load) | (Load, Atom(_)) | (Atom(_), Load) => {
            Some(ConflictKind::ReadAtomicRace)
        }
        (Store, Red(_)) | (Red(_), Store) | (Store, Atom(_)) | (Atom(_), Store) => {
            Some(ConflictKind::MixedPlainAtomic)
        }
        // Any value-returning atomic in an unordered pair races on its
        // return value, whatever the final memory bits converge to.
        (Atom(_), Atom(_)) | (Atom(_), Red(_)) | (Red(_), Atom(_)) => {
            Some(ConflictKind::AtomReturnRace)
        }
        (Red(x), Red(y)) if x != y => Some(ConflictKind::MixedOpAtomics),
        (Red(op), Red(_)) => Some(if !op.order_sensitive() {
            // Associative-commutative reductions converge bit-exactly in
            // any order: the race is on visibility only.
            ConflictKind::CommutativeRedRace
        } else if op.fusible() {
            // `red.add.f32`: deterministic under DAB's ordered buffers,
            // rounding-divergent on a timing-ordered baseline (Fig. 1).
            ConflictKind::FpRedRace
        } else {
            // `exch`: last writer wins; order-dependent everywhere.
            ConflictKind::ExchRace
        }),
    }
}

/// All accesses to one word sharing `(category, cta, phase, lock)`.
///
/// `ctx.warp` holds a *witness* warp (the first seen); `multi_warp`
/// records whether the group spans several warps. Outcomes are invariant
/// under warp renumbering: witness equality only decides ordering when
/// both groups are single-warp, in which case the witness *is* the warp.
#[derive(Debug, Clone)]
pub(crate) struct Group {
    pub(crate) cat: AccessCat,
    pub(crate) ctx: AccessCtx,
    pub(crate) multi_warp: bool,
    pub(crate) count: u64,
}

/// Whether some pair of accesses drawn from two distinct groups is
/// unordered.
pub(crate) fn groups_unordered(a: &Group, b: &Group) -> bool {
    if let (Some(la), Some(lb)) = (a.ctx.lock, b.ctx.lock) {
        if la == lb {
            return false;
        }
    }
    if a.ctx.cta != b.ctx.cta {
        return true;
    }
    if a.ctx.phase != b.ctx.phase {
        return false;
    }
    a.ctx.warp != b.ctx.warp || a.multi_warp || b.multi_warp
}

/// Whether a group conflicts with itself (two of its own accesses race).
pub(crate) fn group_self_unordered(g: &Group) -> bool {
    g.multi_warp && g.ctx.lock.is_none()
}

/// Per-sector accumulator for the false-sharing pass.
#[derive(Debug, Clone)]
struct SectorInfo {
    warp: u32,
    multi_warp: bool,
    word: u64,
    multi_word: bool,
    any_write: bool,
}

/// Mutable walk state for one kernel grid.
#[derive(Debug, Default)]
pub(crate) struct Walk {
    pub(crate) words: HashMap<u64, Vec<Group>>,
    sectors: HashMap<u64, SectorInfo>,
    accesses: u64,
    transactions: u64,
}

impl Walk {
    fn add(&mut self, addr: u64, cat: AccessCat, ctx: AccessCtx) {
        self.accesses += 1;
        let word = addr >> 2;
        let groups = self.words.entry(word).or_default();
        // The walk is CTA-major, so the matching group is almost always
        // at the tail; scan backwards.
        if let Some(g) = groups.iter_mut().rev().find(|g| {
            g.cat == cat
                && g.ctx.cta == ctx.cta
                && g.ctx.phase == ctx.phase
                && g.ctx.lock == ctx.lock
        }) {
            g.count += 1;
            if g.ctx.warp != ctx.warp {
                g.multi_warp = true;
            }
        } else {
            groups.push(Group {
                cat,
                ctx,
                multi_warp: false,
                count: 1,
            });
        }

        let sector = addr / SECTOR_BYTES;
        match self.sectors.get_mut(&sector) {
            Some(s) => {
                if s.warp != ctx.warp {
                    s.multi_warp = true;
                }
                if s.word != word {
                    s.multi_word = true;
                }
                s.any_write |= cat.is_write();
            }
            None => {
                self.sectors.insert(
                    sector,
                    SectorInfo {
                        warp: ctx.warp,
                        multi_warp: false,
                        word,
                        multi_word: false,
                        any_write: cat.is_write(),
                    },
                );
            }
        }
    }

    fn add_mem(&mut self, accesses: &[MemAccess], cat: AccessCat, ctx: AccessCtx) {
        for acc in accesses {
            self.transactions += acc.sectors(SECTOR_BYTES).len() as u64;
            for &addr in &acc.addrs {
                self.add(addr, cat, ctx);
            }
        }
    }

    fn add_atomics(&mut self, accesses: &[AtomicAccess], cat: AccessCat, ctx: AccessCtx) {
        for acc in accesses {
            self.add(acc.addr, cat, ctx);
        }
    }
}

/// Walks one kernel grid into its per-word access groups, also counting
/// barrier-divergent CTAs. Shared between [`analyze_kernel`] and the
/// happens-before graph export ([`crate::hbgraph`]); the group vector
/// order within a word is the CTA-major walk order, which is
/// deterministic.
pub(crate) fn walk_kernel(grid: &KernelGrid) -> (Walk, u64) {
    let mut walk = Walk::default();
    let mut divergent_ctas = 0u64;
    let mut warp_id = 0u32;

    for (cta_idx, cta) in grid.ctas.iter().enumerate() {
        let cta_idx = cta_idx as u32;
        let mut bar_counts: Vec<u32> = Vec::with_capacity(cta.warps.len());
        for warp in &cta.warps {
            let mut phase = 0u32;
            for instr in &warp.instrs {
                let lock = match instr.ordering_effect() {
                    OrderingEffect::CtaBarrier => {
                        phase += 1;
                        continue;
                    }
                    OrderingEffect::TicketLock { lock_addr } => Some(lock_addr >> 2),
                    // Flush points order only the issuing warp's own
                    // accesses — already covered by program order.
                    OrderingEffect::FlushPoint | OrderingEffect::None => None,
                };
                let ctx = AccessCtx {
                    cta: cta_idx,
                    warp: warp_id,
                    phase,
                    lock,
                };
                match instr {
                    Instr::Load { accesses } => walk.add_mem(accesses, AccessCat::Load, ctx),
                    Instr::Store { accesses } => walk.add_mem(accesses, AccessCat::Store, ctx),
                    Instr::Red { op, accesses } => {
                        walk.add_atomics(accesses, AccessCat::Red(*op), ctx)
                    }
                    Instr::Atom { op, accesses } => {
                        walk.add_atomics(accesses, AccessCat::Atom(*op), ctx)
                    }
                    Instr::LockedSection { op, accesses, .. } => {
                        walk.add_atomics(accesses, AccessCat::Red(*op), ctx)
                    }
                    Instr::Alu { .. } | Instr::Bar | Instr::Fence => {}
                }
            }
            bar_counts.push(phase);
            warp_id += 1;
        }
        if bar_counts.windows(2).any(|w| w[0] != w[1]) {
            divergent_ctas += 1;
        }
    }
    (walk, divergent_ctas)
}

/// Statically analyzes one kernel grid: happens-before construction,
/// conflict classification, lints, and the sector passes.
///
/// # Examples
///
/// A mixed-opcode atomic race is a hazard:
///
/// ```
/// use analysis::conflict::analyze_kernel;
/// use analysis::report::{Class, ConflictKind};
/// use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
/// use gpu_sim::kernel::{CtaSpec, KernelGrid};
///
/// let red = |op| Instr::Red {
///     op,
///     accesses: vec![AtomicAccess::new(0, 0x100, Value::U32(1))],
/// };
/// let grid = KernelGrid::new(
///     "mixed",
///     vec![
///         CtaSpec::new(0, vec![WarpProgram::new(vec![red(AtomicOp::AddU32)], 1)]),
///         CtaSpec::new(1, vec![WarpProgram::new(vec![red(AtomicOp::MaxU32)], 1)]),
///     ],
/// );
/// let report = analyze_kernel(&grid);
/// assert!(report
///     .findings
///     .iter()
///     .any(|f| f.kind == ConflictKind::MixedOpAtomics && f.kind.class() == Class::Hazard));
/// ```
pub fn analyze_kernel(grid: &KernelGrid) -> KernelReport {
    let lints = lint::lint_kernel(grid);
    let (walk, divergent_ctas) = walk_kernel(grid);

    // Classification: per word, find which conflict kinds have at least
    // one unordered pair among the word's groups. HashMap iteration order
    // never leaks: all accumulation below is commutative (sums, min/max).
    let mut acc: Vec<Option<Finding>> = vec![None; crate::report::ALL_KINDS.len()];
    for (&word, groups) in &walk.words {
        // Which kinds are even possible here, from the categories present.
        let mut cats: Vec<AccessCat> = Vec::new();
        for g in groups {
            if !cats.contains(&g.cat) {
                cats.push(g.cat);
            }
        }
        let mut possible: Vec<ConflictKind> = Vec::new();
        for i in 0..cats.len() {
            for j in i..cats.len() {
                if let Some(k) = classify_pair(cats[i], cats[j]) {
                    if !possible.contains(&k) {
                        possible.push(k);
                    }
                }
            }
        }
        if possible.is_empty() {
            continue;
        }
        let mut found: Vec<ConflictKind> = Vec::new();
        'pairs: for i in 0..groups.len() {
            for j in i..groups.len() {
                let unordered = if i == j {
                    group_self_unordered(&groups[i])
                } else {
                    groups_unordered(&groups[i], &groups[j])
                };
                if !unordered {
                    continue;
                }
                if let Some(k) = classify_pair(groups[i].cat, groups[j].cat) {
                    if !found.contains(&k) {
                        found.push(k);
                        if found.len() == possible.len() {
                            break 'pairs;
                        }
                    }
                }
            }
        }
        if found.is_empty() {
            continue;
        }
        let site_accesses: u64 = groups.iter().map(|g| g.count).sum();
        let addr = word << 2;
        for k in found {
            let slot = &mut acc[kind_index(k)];
            let f = slot.get_or_insert_with(|| Finding::new(k));
            f.sites += 1;
            f.accesses += site_accesses;
            f.addr_min = f.addr_min.min(addr);
            f.addr_max = f.addr_max.max(addr);
        }
    }
    if divergent_ctas > 0 {
        let f = acc[kind_index(ConflictKind::BarrierDivergence)]
            .get_or_insert_with(|| Finding::new(ConflictKind::BarrierDivergence));
        f.sites += divergent_ctas;
    }

    let mut findings: Vec<Finding> = acc
        .into_iter()
        .flatten()
        .map(|mut f| {
            f.kernels = 1;
            f
        })
        .collect();
    sort_findings(&mut findings);

    let shared_sectors = walk
        .sectors
        .values()
        .filter(|s| s.multi_warp && s.multi_word && s.any_write)
        .count() as u64;

    KernelReport {
        name: grid.name.clone(),
        warps: grid.total_warps() as u64,
        sites: walk.words.len() as u64,
        accesses: walk.accesses,
        transactions: walk.transactions,
        shared_sectors,
        findings,
        lints,
    }
}

fn kind_index(k: ConflictKind) -> usize {
    crate::report::ALL_KINDS
        .iter()
        .position(|&x| x == k)
        .expect("kind is in ALL_KINDS")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::isa::{LockKind, Value, WarpProgram};
    use gpu_sim::kernel::CtaSpec;

    fn red_at(op: AtomicOp, addr: u64) -> Instr {
        Instr::Red {
            op,
            accesses: vec![AtomicAccess::new(0, addr, Value::U32(1))],
        }
    }

    fn one_warp_ctas(instrs: Vec<Vec<Instr>>) -> KernelGrid {
        let ctas = instrs
            .into_iter()
            .enumerate()
            .map(|(i, is)| CtaSpec::new(i, vec![WarpProgram::new(is, 1)]))
            .collect();
        KernelGrid::new("test", ctas)
    }

    fn kinds(grid: &KernelGrid) -> Vec<ConflictKind> {
        analyze_kernel(grid)
            .findings
            .iter()
            .map(|f| f.kind)
            .collect()
    }

    #[test]
    fn pair_matrix_is_symmetric() {
        use AccessCat::*;
        let cats = [
            Load,
            Store,
            Red(AtomicOp::AddF32),
            Red(AtomicOp::AddU32),
            Red(AtomicOp::ExchB32),
            Atom(AtomicOp::AddU32),
        ];
        for &a in &cats {
            for &b in &cats {
                assert_eq!(classify_pair(a, b), classify_pair(b, a), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn same_op_red_classification() {
        use AccessCat::Red;
        assert_eq!(
            classify_pair(Red(AtomicOp::AddU32), Red(AtomicOp::AddU32)),
            Some(ConflictKind::CommutativeRedRace)
        );
        assert_eq!(
            classify_pair(Red(AtomicOp::MaxF32), Red(AtomicOp::MaxF32)),
            Some(ConflictKind::CommutativeRedRace),
            "exact fp max converges in any order"
        );
        assert_eq!(
            classify_pair(Red(AtomicOp::AddF32), Red(AtomicOp::AddF32)),
            Some(ConflictKind::FpRedRace)
        );
        assert_eq!(
            classify_pair(Red(AtomicOp::ExchB32), Red(AtomicOp::ExchB32)),
            Some(ConflictKind::ExchRace)
        );
    }

    #[test]
    fn cross_cta_fp_red_race() {
        let grid = one_warp_ctas(vec![
            vec![red_at(AtomicOp::AddF32, 0x100)],
            vec![red_at(AtomicOp::AddF32, 0x100)],
        ]);
        assert_eq!(kinds(&grid), vec![ConflictKind::FpRedRace]);
    }

    #[test]
    fn same_warp_is_ordered() {
        let grid = one_warp_ctas(vec![vec![
            red_at(AtomicOp::AddF32, 0x100),
            red_at(AtomicOp::AddU32, 0x100),
        ]]);
        assert!(kinds(&grid).is_empty(), "program order covers one warp");
    }

    #[test]
    fn barrier_orders_phases_within_cta() {
        let mk = |with_bar: bool| {
            let mut w0 = vec![Instr::Store {
                accesses: vec![MemAccess { addrs: vec![0x100] }],
            }];
            let mut w1 = Vec::new();
            if with_bar {
                w0.push(Instr::Bar);
                w1.push(Instr::Bar);
            }
            w1.push(Instr::Load {
                accesses: vec![MemAccess { addrs: vec![0x100] }],
            });
            KernelGrid::new(
                "bar",
                vec![CtaSpec::new(
                    0,
                    vec![WarpProgram::new(w0, 1), WarpProgram::new(w1, 1)],
                )],
            )
        };
        assert_eq!(kinds(&mk(false)), vec![ConflictKind::StoreLoad]);
        assert!(kinds(&mk(true)).is_empty(), "barrier orders the phases");
    }

    #[test]
    fn ticket_locks_order_critical_sections() {
        let locked = |cta: usize| {
            CtaSpec::new(
                cta,
                vec![WarpProgram::new(
                    vec![Instr::LockedSection {
                        kind: LockKind::TestAndSet,
                        lock_addr: 0x4000,
                        op: AtomicOp::AddF32,
                        accesses: vec![AtomicAccess::new(0, 0x100, Value::F32(1.0))],
                        critical_cycles: 4,
                    }],
                    1,
                )],
            )
        };
        let grid = KernelGrid::new("locked", vec![locked(0), locked(1)]);
        assert!(kinds(&grid).is_empty(), "same lock ⇒ ticket order");
    }

    #[test]
    fn different_locks_do_not_order() {
        let locked = |cta: usize, lock_addr: u64| {
            CtaSpec::new(
                cta,
                vec![WarpProgram::new(
                    vec![Instr::LockedSection {
                        kind: LockKind::TestAndSet,
                        lock_addr,
                        op: AtomicOp::AddF32,
                        accesses: vec![AtomicAccess::new(0, 0x100, Value::F32(1.0))],
                        critical_cycles: 4,
                    }],
                    1,
                )],
            )
        };
        let grid = KernelGrid::new("locked", vec![locked(0, 0x4000), locked(1, 0x4004)]);
        assert_eq!(kinds(&grid), vec![ConflictKind::FpRedRace]);
    }

    #[test]
    fn multi_warp_group_self_conflicts() {
        // Two warps of one CTA, same phase, same cat, same word: the
        // accesses collapse into one group that must still race.
        let grid = KernelGrid::new(
            "selfpair",
            vec![CtaSpec::new(
                0,
                vec![
                    WarpProgram::new(vec![red_at(AtomicOp::AddF32, 0x100)], 1),
                    WarpProgram::new(vec![red_at(AtomicOp::AddF32, 0x100)], 1),
                ],
            )],
        );
        assert_eq!(kinds(&grid), vec![ConflictKind::FpRedRace]);
    }

    #[test]
    fn atom_return_and_store_hazards() {
        let atom = |addr| Instr::Atom {
            op: AtomicOp::AddU32,
            accesses: vec![AtomicAccess::new(0, addr, Value::U32(1))],
        };
        let grid = one_warp_ctas(vec![vec![atom(0x100)], vec![atom(0x100)]]);
        assert_eq!(kinds(&grid), vec![ConflictKind::AtomReturnRace]);

        let store = |addr| Instr::Store {
            accesses: vec![MemAccess { addrs: vec![addr] }],
        };
        let grid = one_warp_ctas(vec![vec![store(0x200)], vec![store(0x200)]]);
        assert_eq!(kinds(&grid), vec![ConflictKind::StoreStore]);

        let grid = one_warp_ctas(vec![
            vec![store(0x200)],
            vec![red_at(AtomicOp::AddU32, 0x200)],
        ]);
        assert_eq!(kinds(&grid), vec![ConflictKind::MixedPlainAtomic]);
    }

    #[test]
    fn barrier_divergence_detected() {
        let grid = KernelGrid::new(
            "div",
            vec![CtaSpec::new(
                0,
                vec![
                    WarpProgram::new(vec![Instr::Bar], 1),
                    WarpProgram::new(vec![], 1),
                ],
            )],
        );
        let report = analyze_kernel(&grid);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == ConflictKind::BarrierDivergence && f.sites == 1));
    }

    #[test]
    fn false_sharing_counted_not_classified() {
        // Two warps in different CTAs write *different* words of one
        // 32-byte sector: no finding, one shared sector.
        let store = |addr| Instr::Store {
            accesses: vec![MemAccess { addrs: vec![addr] }],
        };
        let grid = one_warp_ctas(vec![vec![store(0x100)], vec![store(0x104)]]);
        let report = analyze_kernel(&grid);
        assert!(report.findings.is_empty());
        assert_eq!(report.shared_sectors, 1);
    }

    #[test]
    fn transactions_reuse_sector_coalescing() {
        let grid = one_warp_ctas(vec![vec![Instr::Load {
            accesses: vec![MemAccess::per_lane_f32(0, 32)], // 128 B = 4 sectors
        }]]);
        assert_eq!(analyze_kernel(&grid).transactions, 4);
    }
}
