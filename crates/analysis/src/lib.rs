//! # Static trace-level determinism analysis (`dab-analyze`)
//!
//! DAB's value proposition is *weak determinism*: relaxed atomics may
//! commit in any buffered order, yet the final bits must be reproducible.
//! This crate decides, **statically and per trace**, which accesses of a
//! workload are ordered, which race benignly, and which are genuine
//! determinism hazards — without running the timing simulator. That is
//! possible because the simulator is trace-driven: every
//! [`gpu_sim::isa::WarpProgram`] is fully lowered before simulation, so
//! the happens-before relation is decidable from the IR alone.
//!
//! The passes, in order:
//!
//! 1. **Happens-before construction** ([`hb`]) — program order, `Bar`
//!    barrier phases within a CTA, deterministic ticket order across
//!    `LockedSection`s sharing a lock, with `Fence`/`Atom` as
//!    warp-local flush points (driven by
//!    [`gpu_sim::isa::Instr::ordering_effect`]).
//! 2. **Conflict detection and hazard classification** ([`conflict`]) —
//!    word-granular pairing of unordered conflicting accesses, bucketed
//!    into [`report::Class::Benign`] / [`report::Class::WeakDetOk`] /
//!    [`report::Class::Hazard`], plus sector-level transaction and
//!    false-sharing statistics reusing [`gpu_sim::isa::MemAccess::sectors`].
//! 3. **Well-formedness linting** ([`lint`]) — trace invariants every
//!    workload generator must uphold.
//! 4. **Deterministic reporting and CI gating** ([`report`]) — sorted,
//!    seed-independent, byte-identical reports (text and hand-rolled
//!    JSON), gated against an explicit allowlist.
//!
//! The `dab-analyze` binary runs the whole workload suite
//! (`cargo run --release -p analysis --bin dab-analyze -- --suite`) and
//! exits non-zero on any non-allowlisted hazard or lint.
//!
//! # Examples
//!
//! The Fig. 1 microbenchmark races on floating-point rounding — exactly
//! the class DAB makes deterministic:
//!
//! ```
//! use analysis::analyze_benchmark;
//! use analysis::report::{Class, ConflictKind};
//! use dab_workloads::scale::Scale;
//! use dab_workloads::suite::micro_suite;
//!
//! let micros = micro_suite(Scale::Ci);
//! let sum = micros.iter().find(|b| b.name == "micro_atomic_sum").unwrap();
//! let report = analyze_benchmark(sum);
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].kind, ConflictKind::FpRedRace);
//! assert_eq!(report.findings[0].kind.class(), Class::WeakDetOk);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use dab_workloads::suite::{Benchmark, Family};

pub mod conflict;
pub mod hb;
pub mod hbgraph;
pub mod lint;
pub mod report;

pub use conflict::analyze_kernel;
pub use report::{Allowlist, BenchReport, Class, ConflictKind, SuiteReport};

/// Stable family label for reports.
pub fn family_label(family: Family) -> &'static str {
    match family {
        Family::Graph => "graph",
        Family::Conv => "conv",
        Family::Micro => "micro",
    }
}

/// Analyzes every kernel launch of one benchmark and merges the results.
pub fn analyze_benchmark(bench: &Benchmark) -> BenchReport {
    let kernels: Vec<report::KernelReport> =
        bench.kernels.iter().map(conflict::analyze_kernel).collect();
    BenchReport::from_kernels(&bench.name, family_label(bench.family), &kernels)
}

/// Analyzes a whole suite serially, in suite order.
pub fn analyze_suite(benches: &[Benchmark], scale: &str) -> SuiteReport {
    analyze_suite_with_jobs(benches, scale, 1)
}

/// Analyzes a suite on `jobs` worker threads (work-stealing over
/// benchmarks). Results come back **in suite order** regardless of which
/// worker finished first — mirroring `crates/bench`'s sweep contract —
/// so the report is byte-identical for any worker count.
pub fn analyze_suite_with_jobs(benches: &[Benchmark], scale: &str, jobs: usize) -> SuiteReport {
    let jobs = jobs.clamp(1, benches.len().max(1));
    let reports: Vec<BenchReport> = if jobs <= 1 {
        benches.iter().map(analyze_benchmark).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let done: std::sync::Mutex<Vec<(usize, BenchReport)>> =
            std::sync::Mutex::new(Vec::with_capacity(benches.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= benches.len() {
                        break;
                    }
                    let report = analyze_benchmark(&benches[i]);
                    done.lock().expect("results lock").push((i, report));
                });
            }
        });
        let mut done = done.into_inner().expect("results lock");
        done.sort_by_key(|(i, _)| *i);
        done.into_iter().map(|(_, r)| r).collect()
    };
    SuiteReport {
        scale: scale.to_string(),
        benches: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dab_workloads::scale::Scale;
    use dab_workloads::suite::micro_suite;

    #[test]
    fn family_labels() {
        assert_eq!(family_label(Family::Graph), "graph");
        assert_eq!(family_label(Family::Conv), "conv");
        assert_eq!(family_label(Family::Micro), "micro");
    }

    #[test]
    fn parallel_analysis_matches_serial() {
        let micros = micro_suite(Scale::Ci);
        let serial = analyze_suite(&micros, "ci");
        for jobs in [2, 4, 16] {
            let parallel = analyze_suite_with_jobs(&micros, "ci", jobs);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn lock_benches_are_conflict_free() {
        for b in micro_suite(Scale::Ci) {
            if b.name.starts_with("micro_lock_") {
                let r = analyze_benchmark(&b);
                assert!(
                    r.findings.is_empty(),
                    "{}: ticket locks order everything, got {:?}",
                    b.name,
                    r.findings
                );
            }
        }
    }

    #[test]
    fn ticket_counter_is_a_hazard() {
        let micros = micro_suite(Scale::Ci);
        let b = micros
            .iter()
            .find(|b| b.name == "micro_ticket_counter")
            .unwrap();
        let r = analyze_benchmark(b);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, ConflictKind::AtomReturnRace);
        assert_eq!(r.findings[0].kind.class(), Class::Hazard);
        // Exactly the one shared cursor word.
        assert_eq!(r.findings[0].sites, 1);
    }
}
