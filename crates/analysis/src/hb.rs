//! The happens-before relation over lowered warp traces.
//!
//! Because the simulator is trace-driven, every `WarpProgram` is fully
//! lowered before execution: the complete set of dynamic memory accesses —
//! and every ordering construct between them — is statically known. That
//! makes the happens-before relation *decidable per trace*, which is what
//! this module implements.
//!
//! The rules, one per [`gpu_sim::isa::OrderingEffect`] variant (kernel
//! grids are analyzed independently — a kernel launch boundary is a
//! device-wide synchronization point):
//!
//! - **program order** — two accesses of the same warp are always ordered;
//! - **`CtaBarrier`** (`Instr::Bar`) — accesses of different warps of the
//!   same CTA separated by a barrier (different *barrier phases*) are
//!   ordered; same-phase accesses of different warps are not;
//! - **`TicketLock`** (`Instr::LockedSection`) — critical sections
//!   guarding the same lock variable run in global-thread-id ticket order,
//!   so their contents are mutually ordered across warps *and* CTAs;
//! - **`FlushPoint`** (`Instr::Fence`, `Instr::Atom`) — under DAB these
//!   drain the issuing warp's own atomic buffer before it proceeds. They
//!   order a warp against its *own* later accesses (already covered by
//!   program order) and create **no** cross-warp edge, so they do not
//!   appear in [`AccessCtx`] at all.
//!
//! Everything else — different CTAs, or different warps of one CTA within
//! one barrier phase and no common lock — is unordered, and any
//! conflicting pair of such accesses is a race for
//! [`crate::conflict`] to classify.

/// The ordering-relevant context of one memory access: where in the
/// ordering structure of the kernel it was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// CTA index within the kernel grid.
    pub cta: u32,
    /// Warp index within the kernel (globally unique across CTAs).
    pub warp: u32,
    /// Barrier phase within the CTA: the number of `Bar` instructions the
    /// issuing warp has executed before this access.
    pub phase: u32,
    /// `Some(lock_word)` when the access happens inside a
    /// `LockedSection` guarding that lock variable.
    pub lock: Option<u64>,
}

/// Whether two accesses are **unordered** — i.e. no happens-before edge
/// exists between them in either direction.
///
/// # Examples
///
/// ```
/// use analysis::hb::{unordered, AccessCtx};
///
/// let a = AccessCtx { cta: 0, warp: 0, phase: 0, lock: None };
/// let same_warp = AccessCtx { cta: 0, warp: 0, phase: 0, lock: None };
/// let other_cta = AccessCtx { cta: 1, warp: 9, phase: 0, lock: None };
/// let next_phase = AccessCtx { cta: 0, warp: 1, phase: 1, lock: None };
/// assert!(!unordered(&a, &same_warp)); // program order
/// assert!(unordered(&a, &other_cta)); // nothing orders CTAs
/// assert!(!unordered(&a, &next_phase)); // barrier orders phases
/// ```
pub fn unordered(a: &AccessCtx, b: &AccessCtx) -> bool {
    // Ticket order: critical sections guarding the same lock are serialized
    // in global-thread-id order across the whole grid.
    if let (Some(la), Some(lb)) = (a.lock, b.lock) {
        if la == lb {
            return false;
        }
    }
    // No device-wide ordering construct inside a kernel: distinct CTAs
    // are never ordered (short of a shared lock, handled above).
    if a.cta != b.cta {
        return true;
    }
    // Barriers order the warps of a CTA phase by phase.
    if a.phase != b.phase {
        return false;
    }
    // Same CTA, same phase: only program order remains.
    a.warp != b.warp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cta: u32, warp: u32, phase: u32, lock: Option<u64>) -> AccessCtx {
        AccessCtx {
            cta,
            warp,
            phase,
            lock,
        }
    }

    #[test]
    fn program_order_within_a_warp() {
        assert!(!unordered(&ctx(0, 0, 0, None), &ctx(0, 0, 0, None)));
        // Even across that warp's own barrier phases.
        assert!(!unordered(&ctx(0, 0, 0, None), &ctx(0, 0, 2, None)));
    }

    #[test]
    fn barriers_order_phases_not_peers() {
        // Different warps, same phase: racy.
        assert!(unordered(&ctx(0, 0, 1, None), &ctx(0, 1, 1, None)));
        // Different warps, different phases: the barrier between them
        // ordered them.
        assert!(!unordered(&ctx(0, 0, 0, None), &ctx(0, 1, 1, None)));
    }

    #[test]
    fn ctas_are_never_barrier_ordered() {
        // `Bar` is CTA-local: equal or unequal phases mean nothing across
        // CTAs.
        assert!(unordered(&ctx(0, 0, 1, None), &ctx(1, 8, 1, None)));
        assert!(unordered(&ctx(0, 0, 0, None), &ctx(1, 8, 3, None)));
    }

    #[test]
    fn ticket_locks_order_across_everything() {
        let l = Some(0x2100_0000 >> 2);
        // Same lock: ordered even across CTAs.
        assert!(!unordered(&ctx(0, 0, 0, l), &ctx(5, 40, 0, l)));
        // Different locks: no common ticket sequence.
        assert!(unordered(&ctx(0, 0, 0, l), &ctx(5, 40, 0, Some(1))));
        // Locked vs unlocked access: the lock only orders its sections.
        assert!(unordered(&ctx(0, 0, 0, l), &ctx(5, 40, 0, None)));
    }
}
