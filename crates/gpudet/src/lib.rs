//! # GPUDet: strongly deterministic GPU execution (prior-work baseline)
//!
//! A reimplementation of the GPUDet architecture (Jooybar, Fung, O'Connor,
//! Devietti, Aamodt — ASPLOS 2013) as an execution model for the `gpu-sim`
//! substrate, used by the DAB paper (MICRO 2020) as its deterministic
//! baseline (Figs. 3 and 10).
//!
//! GPUDet provides *strong* determinism by handling **all** global memory
//! instructions, at a steep cost:
//!
//! - **Parallel mode**: each warp executes up to a fixed *quantum* of
//!   instructions; global stores are appended to per-warp store buffers
//!   instead of being written through. A warp ends its quantum early when
//!   it reaches an atomic instruction.
//! - **Commit mode**: once every warp has finished its quantum, store
//!   buffers are made globally visible in a deterministic order,
//!   accelerated by Z-buffer hardware (modeled as a commit latency
//!   proportional to the buffered volume).
//! - **Serial mode**: warps that stopped at atomics execute them *one at a
//!   time*, in deterministic warp-id order across the whole GPU —
//!   essentially serializing the machine, which is the dominant overhead on
//!   atomic-intensive workloads (Fig. 3).
//!
//! The per-mode cycle breakdown is exported through the statistics counters
//! `gpudet.parallel_cycles`, `gpudet.commit_cycles` and
//! `gpudet.serial_cycles`, which the `fig03_gpudet_breakdown` bench target
//! turns back into the paper's Fig. 3.
//!
//! # Examples
//!
//! ```
//! use gpudet::{GpuDetConfig, GpuDetModel};
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::engine::GpuSim;
//! use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
//! use gpu_sim::kernel::{CtaSpec, KernelGrid};
//! use gpu_sim::ndet::NdetSource;
//!
//! let cfg = GpuConfig::tiny();
//! let red = Instr::Red {
//!     op: AtomicOp::AddF32,
//!     accesses: (0..32)
//!         .map(|l| AtomicAccess::new(l, 0x100, Value::F32(0.5)))
//!         .collect(),
//! };
//! let cta = CtaSpec::new(0, vec![WarpProgram::new(vec![red], 32)]);
//! let grid = KernelGrid::new("sum", vec![cta]);
//! let model = GpuDetModel::new(&cfg, GpuDetConfig::default());
//! let report = GpuSim::new(cfg, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
//! assert_eq!(report.values.read_f32(0x100), 16.0);
//! ```

use std::collections::BTreeMap;

use gpu_sim::config::GpuConfig;
use gpu_sim::exec::{
    AtomicIssue, AtomicRoute, ExecutionModel, HookMask, ModelCtx, StoreRoute, WarpId,
};
use gpu_sim::kernel::CtaDistribution;
use gpu_sim::mem::packet::{AtomKind, WarpRef};
use gpu_sim::sched::SchedKind;

/// GPUDet tuning parameters.
///
/// The defaults follow the spirit of the original design: quanta long
/// enough to amortize commit, commits accelerated by Z-buffer hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuDetConfig {
    /// Warp instructions per quantum before a forced quantum end.
    pub quantum: u32,
    /// Fixed cycles of every commit phase (pipeline drain + Z-buffer setup).
    pub commit_base_cycles: u32,
    /// Store-buffer entries committed per cycle per memory partition.
    pub commit_entries_per_cycle: u32,
}

impl Default for GpuDetConfig {
    fn default() -> Self {
        Self {
            quantum: 200,
            commit_base_cycles: 50,
            commit_entries_per_cycle: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Parallel,
    Commit,
    Serial,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WarpInfo {
    warp: WarpRef,
    issued: u32,
    /// Quantum over: budget exhausted or atomic completed in serial mode.
    done: bool,
    /// Stopped at an atomic; must run in serial mode.
    pending_atomic: bool,
    /// Waiting at a CTA barrier.
    at_barrier: bool,
}

/// The GPUDet execution model.
#[derive(Debug)]
pub struct GpuDetModel {
    cfg: GpuDetConfig,
    num_partitions: usize,
    /// Live warps keyed by deterministic unique id (the serial-mode order).
    warps: BTreeMap<u64, WarpInfo>,
    mode: Mode,
    mode_entered: u64,
    /// Store-buffer entries accumulated this quantum (whole GPU).
    store_entries: u64,
    commit_until: u64,
    /// Serial mode: the unique id currently holding the execution token.
    serial_current: Option<u64>,
    /// The current serial warp has issued and awaits its last write-back.
    awaiting_ack: bool,
    parallel_cycles: u64,
    commit_cycles: u64,
    serial_cycles: u64,
    quanta: u64,
    reported: [u64; 4],
    /// Trace mode copied from the GPU config; gates mode-change events.
    trace: obs::TraceMode,
    /// Deferred mode-transition trace events, drained by the engine after
    /// each tick (all pushes happen on the coordinating thread).
    trace_events: Vec<obs::Event>,
}

impl GpuDetModel {
    /// Builds a GPUDet model for the given machine.
    ///
    /// # Panics
    ///
    /// Panics if the quantum length is zero.
    pub fn new(gpu: &GpuConfig, cfg: GpuDetConfig) -> Self {
        assert!(cfg.quantum > 0, "quantum must be non-zero");
        Self {
            cfg,
            num_partitions: gpu.num_mem_partitions,
            warps: BTreeMap::new(),
            mode: Mode::Parallel,
            mode_entered: 0,
            store_entries: 0,
            commit_until: 0,
            serial_current: None,
            awaiting_ack: false,
            parallel_cycles: 0,
            commit_cycles: 0,
            serial_cycles: 0,
            quanta: 0,
            reported: [0; 4],
            trace: gpu.trace,
            trace_events: Vec::new(),
        }
    }

    /// The GPUDet parameters in use.
    pub fn gpudet_config(&self) -> &GpuDetConfig {
        &self.cfg
    }

    fn account_mode(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.mode_entered);
        match self.mode {
            Mode::Parallel => self.parallel_cycles += elapsed,
            Mode::Commit => self.commit_cycles += elapsed,
            Mode::Serial => self.serial_cycles += elapsed,
        }
        self.mode_entered = now;
    }

    fn enter_mode(&mut self, mode: Mode, now: u64) {
        self.account_mode(now);
        if self.trace.enabled() && mode != self.mode {
            self.trace_events.push(obs::Event::ModeChange {
                cycle: now,
                mode: match mode {
                    Mode::Parallel => obs::DetMode::Parallel,
                    Mode::Commit => obs::DetMode::Commit,
                    Mode::Serial => obs::DetMode::Serial,
                },
            });
        }
        self.mode = mode;
    }

    fn quantum_complete(&self) -> bool {
        !self.warps.is_empty()
            && self
                .warps
                .values()
                .all(|w| w.done || w.pending_atomic || w.at_barrier)
    }

    fn commit_duration(&self) -> u64 {
        let bw = (self.cfg.commit_entries_per_cycle as u64 * self.num_partitions as u64).max(1);
        self.cfg.commit_base_cycles as u64 + self.store_entries.div_ceil(bw)
    }

    fn start_commit(&mut self, now: u64) {
        self.enter_mode(Mode::Commit, now);
        self.commit_until = now + self.commit_duration();
        self.store_entries = 0;
        self.quanta += 1;
    }

    fn next_serial_warp(&self) -> Option<u64> {
        self.warps
            .iter()
            .find(|(_, w)| w.pending_atomic)
            .map(|(&u, _)| u)
    }

    fn start_new_quantum(&mut self, now: u64) {
        self.enter_mode(Mode::Parallel, now);
        for w in self.warps.values_mut() {
            w.issued = 0;
            w.done = false;
        }
        self.serial_current = None;
        self.awaiting_ack = false;
    }
}

impl ExecutionModel for GpuDetModel {
    fn name(&self) -> String {
        format!("gpudet-q{}", self.cfg.quantum)
    }

    fn replication_key(&self) -> Option<String> {
        // The Debug form of `GpuDetConfig` covers every knob (the display
        // name alone would collapse configs differing only in non-quantum
        // fields), satisfying the equal-key ⇒ identical-behavior contract.
        Some(format!("gpudet/{:?}", self.cfg))
    }

    fn scheduler_kind(&self) -> SchedKind {
        SchedKind::Gto
    }

    fn register_metrics(&self, registry: &mut obs::MetricsRegistry) {
        registry.counter(
            "det.gpudet.parallel_cycles",
            "cycles spent in parallel mode",
        );
        registry.counter("det.gpudet.commit_cycles", "cycles spent in commit mode");
        registry.counter("det.gpudet.serial_cycles", "cycles spent in serial mode");
        registry.counter("det.gpudet.quanta", "quantum rounds completed");
    }

    fn commit_hook_mask(&self) -> HookMask {
        // Quantum/serial-mode gating overrides `can_issue` for every warp,
        // so no cluster is ever eligible for the parallel commit path.
        HookMask::ALL
    }

    fn cta_distribution(&self, num_sms: usize) -> CtaDistribution {
        // GPUDet requires deterministic CTA distribution.
        CtaDistribution::Static {
            active_sms: num_sms,
        }
    }

    fn on_warp_spawn(&mut self, warp: WarpId) {
        self.warps.insert(
            warp.unique,
            WarpInfo {
                warp: WarpRef {
                    sm: warp.sched.sm,
                    slot: warp.slot,
                },
                issued: 0,
                done: false,
                pending_atomic: false,
                at_barrier: false,
            },
        );
    }

    fn on_warp_exit(&mut self, warp: WarpId) {
        self.warps.remove(&warp.unique);
        if self.serial_current == Some(warp.unique) {
            self.serial_current = None;
            self.awaiting_ack = false;
        }
    }

    fn can_issue(&mut self, warp: WarpId, is_atomic: bool, _cycle: u64) -> bool {
        match self.mode {
            Mode::Parallel => {
                let Some(w) = self.warps.get_mut(&warp.unique) else {
                    return false;
                };
                if w.done || w.pending_atomic {
                    return false;
                }
                if is_atomic {
                    // Reaching an atomic prematurely ends the quantum; the
                    // atomic itself runs in serial mode.
                    w.pending_atomic = true;
                    return false;
                }
                w.issued < self.cfg.quantum
            }
            Mode::Commit => false,
            Mode::Serial => {
                // Only the token holder may issue, and only its atomic.
                is_atomic && self.serial_current == Some(warp.unique) && !self.awaiting_ack
            }
        }
    }

    fn on_issue(&mut self, warp: WarpId, is_atomic: bool, _cycle: u64) {
        let mode = self.mode;
        let quantum = self.cfg.quantum;
        let Some(w) = self.warps.get_mut(&warp.unique) else {
            return;
        };
        w.issued += 1;
        if w.issued >= quantum && mode == Mode::Parallel {
            w.done = true;
        }
        if is_atomic && mode == Mode::Serial {
            self.awaiting_ack = true;
        }
    }

    fn on_atomic(&mut self, issue: AtomicIssue<'_>, _cycle: u64) -> AtomicRoute {
        debug_assert_eq!(self.mode, Mode::Serial, "atomics only issue in serial mode");
        debug_assert_eq!(self.serial_current, Some(issue.warp.unique));
        AtomicRoute::ToMemory
    }

    fn on_store(&mut self, _warp: WarpId, sectors: usize, _cycle: u64) -> StoreRoute {
        if self.mode == Mode::Parallel {
            self.store_entries += sectors as u64;
            StoreRoute::Buffered
        } else {
            StoreRoute::Direct
        }
    }

    fn on_barrier_wait(&mut self, warp: WarpId, _cycle: u64) {
        if let Some(w) = self.warps.get_mut(&warp.unique) {
            w.at_barrier = true;
        }
    }

    fn on_barrier_release(
        &mut self,
        _sm: usize,
        warps: &[WarpId],
        _cycle: u64,
    ) -> gpu_sim::exec::BarrierRelease {
        for id in warps {
            if let Some(w) = self.warps.get_mut(&id.unique) {
                w.at_barrier = false;
            }
        }
        gpu_sim::exec::BarrierRelease::Immediate
    }

    fn on_atomic_ack(&mut self, warp: WarpRef, _kind: AtomKind, remaining: u32, _cycle: u64) {
        if self.mode == Mode::Serial && self.awaiting_ack && remaining == 0 {
            if let Some(current) = self.serial_current {
                if self.warps.get(&current).map(|w| w.warp) == Some(warp) {
                    // The serial warp's atomic fully retired: its quantum is
                    // over; pass the token.
                    if let Some(w) = self.warps.get_mut(&current) {
                        w.pending_atomic = false;
                        w.done = true;
                    }
                    self.serial_current = None;
                    self.awaiting_ack = false;
                }
            }
        }
    }

    fn tick(&mut self, ctx: &mut ModelCtx<'_>) {
        match self.mode {
            Mode::Parallel => {
                if ctx.kernel_fully_dispatched && self.warps.is_empty() && self.store_entries > 0 {
                    // Kernel drained with uncommitted stores: final commit.
                    self.start_commit(ctx.cycle);
                } else if self.quantum_complete() {
                    self.start_commit(ctx.cycle);
                }
            }
            Mode::Commit => {
                if ctx.cycle >= self.commit_until {
                    if let Some(next) = self.next_serial_warp() {
                        self.serial_current = Some(next);
                        self.awaiting_ack = false;
                        self.enter_mode(Mode::Serial, ctx.cycle);
                    } else {
                        self.start_new_quantum(ctx.cycle);
                    }
                }
            }
            Mode::Serial => {
                if self.serial_current.is_none() {
                    match self.next_serial_warp() {
                        Some(next) => self.serial_current = Some(next),
                        None => self.start_new_quantum(ctx.cycle),
                    }
                }
            }
        }
        self.account_mode(ctx.cycle);
        // Report counter deltas.
        let totals = [
            self.parallel_cycles,
            self.commit_cycles,
            self.serial_cycles,
            self.quanta,
        ];
        let names = [
            "det.gpudet.parallel_cycles",
            "det.gpudet.commit_cycles",
            "det.gpudet.serial_cycles",
            "det.gpudet.quanta",
        ];
        for i in 0..4 {
            let delta = totals[i] - self.reported[i];
            if delta > 0 {
                ctx.stats.bump(names[i], delta);
                self.reported[i] = totals[i];
            }
        }
    }

    fn take_trace_events(&mut self) -> Vec<obs::Event> {
        std::mem::take(&mut self.trace_events)
    }

    fn buffered_entries(&self) -> u64 {
        self.store_entries
    }

    fn allow_dispatch(&self) -> bool {
        self.mode == Mode::Parallel
    }

    fn quiescent(&self) -> bool {
        self.mode == Mode::Parallel && self.store_entries == 0 && self.serial_current.is_none()
    }

    fn needs_tick(&self) -> bool {
        // In parallel mode `tick` only checks quantum completion, whose
        // inputs (per-warp issue counts, warp arrivals/retirements, dispatch
        // status) change only on engine-visited cycles and are re-checked
        // the same cycle; the mode-accounting totals telescope across a
        // gap. Commit and serial modes advance on their own clock and must
        // tick every cycle.
        self.mode != Mode::Parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::engine::GpuSim;
    use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
    use gpu_sim::kernel::{CtaSpec, KernelGrid};
    use gpu_sim::ndet::NdetSource;

    fn order_sensitive_grid(ctas: usize) -> KernelGrid {
        let specs = (0..ctas)
            .map(|c| {
                CtaSpec::new(
                    c,
                    vec![WarpProgram::new(
                        vec![
                            Instr::Alu {
                                cycles: 2,
                                count: 6,
                            },
                            Instr::Red {
                                op: AtomicOp::AddF32,
                                accesses: (0..32)
                                    .map(|l| {
                                        let v = 0.1f32 * (c * 32 + l + 1) as f32;
                                        AtomicAccess::new(l, 0x400, Value::F32(v))
                                    })
                                    .collect(),
                            },
                        ],
                        32,
                    )],
                )
            })
            .collect();
        KernelGrid::new("sensitive", specs)
    }

    fn run(seed: u64, ctas: usize) -> gpu_sim::engine::RunReport {
        let gpu = GpuConfig::tiny();
        let model = GpuDetModel::new(&gpu, GpuDetConfig::default());
        GpuSim::new(gpu, Box::new(model), NdetSource::seeded(seed))
            .run(&[order_sensitive_grid(ctas)])
    }

    #[test]
    fn gpudet_is_deterministic_across_seeds() {
        let digests: Vec<u64> = (0..4).map(|s| run(s, 12).digest()).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "GPUDet must be deterministic: {digests:?}"
        );
    }

    #[test]
    fn computes_correct_integer_sum() {
        let gpu = GpuConfig::tiny();
        let grid = KernelGrid::new(
            "sum",
            (0..6)
                .map(|c| {
                    CtaSpec::new(
                        c,
                        vec![WarpProgram::new(
                            vec![Instr::Red {
                                op: AtomicOp::AddU32,
                                accesses: (0..32)
                                    .map(|l| AtomicAccess::new(l, 0x80, Value::U32(1)))
                                    .collect(),
                            }],
                            32,
                        )],
                    )
                })
                .collect(),
        );
        let model = GpuDetModel::new(&gpu, GpuDetConfig::default());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(2)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x80), 192);
    }

    #[test]
    fn serial_mode_dominates_atomic_workloads() {
        let report = run(1, 16);
        let serial = report.stats.counter("det.gpudet.serial_cycles");
        let parallel = report.stats.counter("det.gpudet.parallel_cycles");
        assert!(serial > 0, "serial mode must be exercised");
        assert!(
            serial > parallel,
            "atomic-heavy workloads should be serial-dominated: serial={serial} parallel={parallel}"
        );
    }

    #[test]
    fn slower_than_baseline_on_atomics() {
        let gpu = GpuConfig::tiny();
        let baseline = GpuSim::new(
            gpu.clone(),
            Box::new(gpu_sim::exec::BaselineModel::new()),
            NdetSource::seeded(1),
        )
        .run(&[order_sensitive_grid(16)]);
        let gpudet = run(1, 16);
        assert!(
            gpudet.cycles() > baseline.cycles(),
            "GPUDet ({}) should be slower than baseline ({})",
            gpudet.cycles(),
            baseline.cycles()
        );
    }

    #[test]
    fn stores_are_buffered_and_committed() {
        let gpu = GpuConfig::tiny();
        let grid = KernelGrid::new(
            "stores",
            vec![CtaSpec::new(
                0,
                vec![WarpProgram::new(
                    vec![
                        Instr::Store {
                            accesses: vec![gpu_sim::isa::MemAccess::per_lane_f32(0x1000, 32)],
                        },
                        Instr::Alu {
                            cycles: 1,
                            count: 4,
                        },
                    ],
                    32,
                )],
            )],
        );
        let model = GpuDetModel::new(&gpu, GpuDetConfig::default());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        // Stores never hit the network in parallel mode.
        assert_eq!(report.stats.mem_transactions, 0);
        assert!(report.stats.counter("det.gpudet.commit_cycles") > 0);
    }

    #[test]
    fn barriers_work_under_quanta() {
        let gpu = GpuConfig::tiny();
        let prog = |spin: u32| {
            WarpProgram::new(
                vec![
                    Instr::Alu {
                        cycles: 1,
                        count: spin,
                    },
                    Instr::Bar,
                    Instr::Red {
                        op: AtomicOp::AddU32,
                        accesses: vec![AtomicAccess::new(0, 0x40, Value::U32(1))],
                    },
                ],
                32,
            )
        };
        // One warp needs several quanta of ALU work before the barrier.
        let grid = KernelGrid::new("bar", vec![CtaSpec::new(0, vec![prog(4), prog(900)])]);
        let model = GpuDetModel::new(&gpu, GpuDetConfig::default());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x40), 2);
        assert!(report.stats.counter("det.gpudet.quanta") >= 2);
    }

    #[test]
    fn quantum_limits_issue() {
        let gpu = GpuConfig::tiny();
        let cfg = GpuDetConfig {
            quantum: 10,
            ..GpuDetConfig::default()
        };
        let grid = KernelGrid::new(
            "alu",
            vec![CtaSpec::new(
                0,
                vec![WarpProgram::new(
                    vec![Instr::Alu {
                        cycles: 1,
                        count: 35,
                    }],
                    32,
                )],
            )],
        );
        let model = GpuDetModel::new(&gpu, cfg);
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        // 35 instructions at quantum 10 -> at least 4 quanta.
        assert!(report.stats.counter("det.gpudet.quanta") >= 3);
    }

    #[test]
    fn mode_cycles_cover_runtime() {
        let report = run(1, 8);
        let covered = report.stats.counter("det.gpudet.parallel_cycles")
            + report.stats.counter("det.gpudet.commit_cycles")
            + report.stats.counter("det.gpudet.serial_cycles");
        assert!(covered > 0);
        assert!(covered <= report.cycles() + 1);
    }

    #[test]
    #[should_panic(expected = "quantum must be non-zero")]
    fn zero_quantum_rejected() {
        GpuDetModel::new(
            &GpuConfig::tiny(),
            GpuDetConfig {
                quantum: 0,
                ..GpuDetConfig::default()
            },
        );
    }
}
