//! Property-based tests on DAB's hardware structures.

use proptest::prelude::*;

use dab::buffer::AtomicBuffer;
use dab::flush::PartitionReorder;
use gpu_sim::config::GpuConfig;
use gpu_sim::isa::{AtomicAccess, AtomicOp, Value};
use gpu_sim::mem::packet::RopOp;
use gpu_sim::mem::partition::MemPartition;
use gpu_sim::ndet::NdetSource;
use gpu_sim::values::ValueMem;

proptest! {
    /// The buffer never exceeds its capacity, and a failed insertion leaves
    /// it unchanged with the full bit set.
    #[test]
    fn buffer_capacity_invariant(
        capacity in 1usize..64,
        fusion in any::<bool>(),
        inserts in proptest::collection::vec(
            proptest::collection::vec((0u64..16, 0u32..100), 1..8),
            1..40
        ),
    ) {
        let mut buf = AtomicBuffer::new(capacity, fusion);
        for warp_accesses in inserts {
            let accesses: Vec<AtomicAccess> = warp_accesses
                .iter()
                .enumerate()
                .map(|(lane, &(addr, v))| AtomicAccess::new(lane, addr * 4, Value::U32(v)))
                .collect();
            let before = buf.len();
            let ok = buf.try_insert(AtomicOp::AddU32, &accesses);
            prop_assert!(buf.len() <= capacity);
            if !ok {
                prop_assert_eq!(buf.len(), before, "failed insert must not mutate");
                prop_assert!(buf.full_bit());
            }
        }
    }

    /// For integer ops, draining a fused buffer preserves the per-address
    /// total exactly (fusion is a lossless local reduction).
    #[test]
    fn fusion_preserves_integer_totals(
        inserts in proptest::collection::vec(
            proptest::collection::vec((0u64..8, 0u32..1000), 1..6),
            1..20
        ),
    ) {
        let mut fused = AtomicBuffer::new(4096, true);
        let mut reference: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for warp_accesses in &inserts {
            let accesses: Vec<AtomicAccess> = warp_accesses
                .iter()
                .enumerate()
                .map(|(lane, &(addr, v))| AtomicAccess::new(lane, addr * 4, Value::U32(v)))
                .collect();
            prop_assert!(fused.try_insert(AtomicOp::AddU32, &accesses));
            for &(addr, v) in warp_accesses {
                *reference.entry(addr * 4).or_insert(0) += v as u64;
            }
        }
        let mut totals: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for e in fused.drain() {
            *totals.entry(e.addr).or_insert(0) += e.arg.as_u32() as u64;
        }
        prop_assert_eq!(totals, reference);
    }

    /// Whatever order flush transactions arrive in, the partition reorder
    /// logic serves them in exactly the canonical round-robin order.
    #[test]
    fn reorder_restores_canonical_order(
        counts in proptest::collection::vec(0u32..5, 2..6),
        shuffle_seed in any::<u64>(),
    ) {
        let num_sms = counts.len();
        // Canonical order: rounds over SMs.
        let mut canonical = Vec::new();
        let max = counts.iter().copied().max().unwrap_or(0);
        for round in 0..max {
            for (sm, &c) in counts.iter().enumerate() {
                if round < c {
                    canonical.push((sm, round));
                }
            }
        }
        // Arbitrary arrival order (deterministic shuffle from the seed).
        let mut arrivals: Vec<(usize, u32)> = counts
            .iter()
            .enumerate()
            .flat_map(|(sm, &c)| (0..c).map(move |s| (sm, s)))
            .collect();
        let mut rng_state = shuffle_seed | 1;
        for i in (1..arrivals.len()).rev() {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            arrivals.swap(i, (rng_state as usize) % (i + 1));
        }

        let mut part = MemPartition::new(0, &GpuConfig::tiny(), 0);
        let mut reorder = PartitionReorder::new(num_sms);
        for (sm, &c) in counts.iter().enumerate() {
            reorder.on_pre_flush(sm, c, &mut part);
        }
        // Each transaction encodes its identity in its argument.
        for &(sm, seq) in &arrivals {
            let ops = vec![RopOp {
                addr: 0x100,
                op: AtomicOp::ExchB32,
                arg: Value::U32((sm as u32) << 16 | seq),
            }];
            reorder.on_entry(sm, seq, ops, &mut part, false);
        }
        prop_assert!(reorder.is_done());
        // Drain the ROP: the last-exchanged value at each step follows the
        // canonical order. Reconstruct the applied order by running the
        // partition and observing the exchange sequence.
        let mut values = ValueMem::new();
        let mut ndet = NdetSource::disabled();
        let mut applied = Vec::new();
        let mut last = u32::MAX;
        for cycle in 0..1_000_000u64 {
            part.tick(cycle, &mut values, &mut ndet);
            let cur = values.read_u32(0x100);
            if values.atomics_applied() as usize > applied.len() && cur != last {
                applied.push(((cur >> 16) as usize, cur & 0xffff));
                last = cur;
            }
            if !part.is_busy() {
                break;
            }
        }
        // The final applied value must be the canonical last element.
        if let Some(&(sm, seq)) = canonical.last() {
            prop_assert_eq!(values.read_u32(0x100), (sm as u32) << 16 | seq);
        }
        prop_assert_eq!(values.atomics_applied(), canonical.len() as u64);
    }
}

mod end_to_end_determinism {
    use super::*;
    use dab::{DabConfig, DabModel};
    use gpu_sim::engine::GpuSim;
    use gpu_sim::isa::{Instr, MemAccess, WarpProgram};
    use gpu_sim::kernel::{CtaSpec, KernelGrid};
    use gpu_sim::sched::SchedKind;

    /// A random mix of compute, memory, barriers, and same/distinct-address
    /// atomic reductions.
    fn arb_warp_program() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..8, 1..10)
    }

    fn build_program(codes: &[u8], cta: usize, warp: usize) -> WarpProgram {
        let mut instrs = Vec::new();
        for (k, &code) in codes.iter().enumerate() {
            let instr = match code {
                0 => Instr::Alu {
                    cycles: 2,
                    count: 5,
                },
                1 => Instr::Load {
                    accesses: vec![MemAccess::per_lane_f32(
                        0x10_0000 + (cta * 64 + warp * 8 + k) as u64 * 128,
                        32,
                    )],
                },
                2 => Instr::Store {
                    accesses: vec![MemAccess::per_lane_f32(0x20_0000 + k as u64 * 128, 32)],
                },
                // Shared hot cell: maximal ordering sensitivity.
                3 | 4 => Instr::Red {
                    op: AtomicOp::AddF32,
                    accesses: (0..32)
                        .map(|l| {
                            let v = 0.1f32 * ((cta * 31 + warp * 7 + l + k) % 97 + 1) as f32;
                            AtomicAccess::new(l, 0x40, Value::F32(v))
                        })
                        .collect(),
                },
                // Strided cells.
                5 | 6 => Instr::Red {
                    op: AtomicOp::AddF32,
                    accesses: (0..32)
                        .map(|l| {
                            AtomicAccess::new(
                                l,
                                0x1000 + 4 * ((l + k) as u64 % 64),
                                Value::F32(0.3 + k as f32 * 0.01),
                            )
                        })
                        .collect(),
                },
                _ => Instr::Bar,
            };
            instrs.push(instr);
        }
        WarpProgram::new(instrs, 32)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// THE paper's claim, fuzzed: for random kernels and random DAB
        /// design points, two runs under different hardware-timing seeds
        /// produce bitwise identical memory.
        #[test]
        fn random_kernels_are_bitwise_deterministic_under_dab(
            warp_codes in proptest::collection::vec(
                proptest::collection::vec(arb_warp_program(), 1..4), // warps per cta
                1..6 // ctas
            ),
            sched_pick in 0usize..4,
            capacity_pick in 0usize..2,
            fusion in any::<bool>(),
            coalescing in any::<bool>(),
            seeds in (0u64..1000, 1000u64..2000),
        ) {
            let scheds = [SchedKind::Srr, SchedKind::Gtrr, SchedKind::Gtar, SchedKind::Gwat];
            let cfg = DabConfig::paper_default()
                .with_scheduler(scheds[sched_pick])
                .with_capacity([32, 96][capacity_pick])
                .with_fusion(fusion)
                .with_coalescing(coalescing);
            let ctas: Vec<CtaSpec> = warp_codes
                .iter()
                .enumerate()
                .map(|(c, warps)| {
                    CtaSpec::new(
                        c,
                        warps
                            .iter()
                            .enumerate()
                            .map(|(w, codes)| build_program(codes, c, w))
                            .collect(),
                    )
                })
                .collect();
            let grid = KernelGrid::new("fuzz", ctas);
            let gpu = GpuConfig::tiny();
            let digest = |seed: u64| {
                let model = DabModel::new(&gpu, cfg.clone());
                GpuSim::new(gpu.clone(), Box::new(model), NdetSource::seeded(seed))
                    .run(std::slice::from_ref(&grid))
                    .digest()
            };
            prop_assert_eq!(digest(seeds.0), digest(seeds.1), "config {}", cfg.label());
        }
    }
}
