//! Deterministic replay of every case proptest ever shrank to in
//! `properties.proptest-regressions`.
//!
//! The regression file's `cc` hashes only replay under the exact upstream
//! proptest RNG; this test pins the *shrunken inputs themselves* (recorded
//! in the file's comments) as plain `#[test]`s, so the historical
//! flush-protocol bugs stay guarded no matter how the fuzzer's stream or
//! shrinking behaviour changes.
//!
//! Each case asserts the paper's central claim on the recorded kernel:
//! two runs under different hardware-timing seeds produce bitwise
//! identical memory under DAB.

use dab::{DabConfig, DabModel};
use gpu_sim::config::GpuConfig;
use gpu_sim::engine::GpuSim;
use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, MemAccess, Value, WarpProgram};
use gpu_sim::kernel::{CtaSpec, KernelGrid};
use gpu_sim::ndet::NdetSource;
use gpu_sim::sched::SchedKind;

/// Instruction encoding used by the fuzzer in `properties.rs` (same table,
/// same addresses, so the regression inputs reproduce bit-for-bit).
fn build_program(codes: &[u8], cta: usize, warp: usize) -> WarpProgram {
    let mut instrs = Vec::new();
    for (k, &code) in codes.iter().enumerate() {
        let instr = match code {
            0 => Instr::Alu {
                cycles: 2,
                count: 5,
            },
            1 => Instr::Load {
                accesses: vec![MemAccess::per_lane_f32(
                    0x10_0000 + (cta * 64 + warp * 8 + k) as u64 * 128,
                    32,
                )],
            },
            2 => Instr::Store {
                accesses: vec![MemAccess::per_lane_f32(0x20_0000 + k as u64 * 128, 32)],
            },
            3 | 4 => Instr::Red {
                op: AtomicOp::AddF32,
                accesses: (0..32)
                    .map(|l| {
                        let v = 0.1f32 * ((cta * 31 + warp * 7 + l + k) % 97 + 1) as f32;
                        AtomicAccess::new(l, 0x40, Value::F32(v))
                    })
                    .collect(),
            },
            5 | 6 => Instr::Red {
                op: AtomicOp::AddF32,
                accesses: (0..32)
                    .map(|l| {
                        AtomicAccess::new(
                            l,
                            0x1000 + 4 * ((l + k) as u64 % 64),
                            Value::F32(0.3 + k as f32 * 0.01),
                        )
                    })
                    .collect(),
            },
            _ => Instr::Bar,
        };
        instrs.push(instr);
    }
    WarpProgram::new(instrs, 32)
}

/// Replays one recorded case: same config table as the fuzzer
/// (`sched_pick` into [Srr, Gtrr, Gtar, Gwat], `capacity_pick` into
/// [32, 96]) and the recorded seed pair.
fn check_case(
    warp_codes: &[&[&[u8]]],
    sched_pick: usize,
    capacity_pick: usize,
    fusion: bool,
    coalescing: bool,
    seeds: (u64, u64),
) {
    let scheds = [
        SchedKind::Srr,
        SchedKind::Gtrr,
        SchedKind::Gtar,
        SchedKind::Gwat,
    ];
    let cfg = DabConfig::paper_default()
        .with_scheduler(scheds[sched_pick])
        .with_capacity([32, 96][capacity_pick])
        .with_fusion(fusion)
        .with_coalescing(coalescing);
    let ctas: Vec<CtaSpec> = warp_codes
        .iter()
        .enumerate()
        .map(|(c, warps)| {
            CtaSpec::new(
                c,
                warps
                    .iter()
                    .enumerate()
                    .map(|(w, codes)| build_program(codes, c, w))
                    .collect(),
            )
        })
        .collect();
    let grid = KernelGrid::new("regression", ctas);
    let gpu = GpuConfig::tiny();
    let digest = |seed: u64| {
        let model = DabModel::new(&gpu, cfg.clone());
        GpuSim::new(gpu.clone(), Box::new(model), NdetSource::seeded(seed))
            .run(std::slice::from_ref(&grid))
            .digest()
    };
    assert_eq!(
        digest(seeds.0),
        digest(seeds.1),
        "config {} must be bitwise deterministic on the recorded kernel",
        cfg.label()
    );
}

#[test]
fn srr_barrier_then_hot_atomic() {
    // cc 7af60e45: one CTA, warps [Bar] and [Red-hot] under SRR-32.
    check_case(&[&[&[7], &[3]]], 0, 0, false, false, (0, 1000));
}

#[test]
fn srr_single_load() {
    // cc e38fb7cc: a lone load under SRR-32.
    check_case(&[&[&[1]]], 0, 0, false, false, (0, 1000));
}

#[test]
fn srr_alu_burst_vs_barrier() {
    // cc 20afcd9e: ALU burst racing a barrier-only warp under SRR-32.
    check_case(&[&[&[0, 0, 0], &[7]]], 0, 0, false, false, (0, 1008));
}

#[test]
fn srr_barrier_then_atomic_same_warp() {
    // cc 10b2e1f0: barrier followed by a hot atomic in one warp.
    check_case(&[&[&[7, 3]]], 0, 0, false, false, (0, 1000));
}

#[test]
fn gtrr_multi_cta_barrier_mix() {
    // cc 74548705: three CTAs mixing ALU, hot atomics, and barriers
    // under GTRR-32.
    check_case(
        &[
            &[&[0], &[0, 3, 3, 3, 3], &[7]],
            &[&[0]],
            &[&[0], &[7], &[3]],
        ],
        1,
        0,
        false,
        false,
        (0, 1000),
    );
}

#[test]
fn gtar_cross_cta_barrier_atomic() {
    // cc bc0c4968: GTAR-32 with a barrier+atomic CTA racing ALU CTAs.
    check_case(
        &[&[&[0, 0]], &[&[0]], &[&[7, 3]]],
        2,
        0,
        false,
        false,
        (0, 1000),
    );
}

#[test]
fn gtar_barrier_fronted_warps() {
    // cc 9399b419: GTAR-32, barriers leading in two of three CTAs.
    check_case(
        &[&[&[7], &[0, 3, 3, 3]], &[&[0]], &[&[3], &[7]]],
        2,
        0,
        false,
        false,
        (0, 1000),
    );
}

#[test]
fn gtar_coalescing_strided_mix() {
    // cc fb690755: GTAR-32 with flush coalescing on, five CTAs mixing
    // hot and strided reductions, stores, and barriers.
    check_case(
        &[
            &[&[3]],
            &[&[2, 0], &[7, 3, 3, 3, 5]],
            &[&[3, 5, 3]],
            &[&[2, 1], &[1, 2, 5, 3]],
            &[&[5]],
        ],
        2,
        0,
        false,
        true,
        (805, 1000),
    );
}

#[test]
fn gtrr_load_heavy_two_ctas() {
    // cc 3c3f9df2: GTRR-32, load/barrier/atomic interleavings across
    // two CTAs, distinct seed pair (365, 1001).
    check_case(
        &[&[&[1, 7, 3, 7, 0, 3]], &[&[1, 3, 0, 0]]],
        1,
        0,
        false,
        false,
        (365, 1001),
    );
}
