//! Atomic buffers (Section IV-B) and atomic fusion (Section IV-E).
//!
//! An [`AtomicBuffer`] is the per-warp or per-scheduler hardware structure
//! that isolates `red` operations from the rest of the machine. Each entry
//! holds `(address, argument, opcode)` — 9 bytes in the paper's sizing (5 B
//! address, 4 B argument, 1 B opcode + valid). The buffer supports
//! associative search by address, which makes *atomic fusion* cheap: a new
//! operation with the same `(address, opcode)` as an existing entry is
//! locally reduced into it, saving space and deferring costly flushes.
//!
//! Buffer contents are filled in a deterministic order — program order
//! within a warp, lane order within an instruction, and determinism-aware
//! scheduler order across warps — so draining the buffer yields the same
//! sequence on every run.
//!
//! # Examples
//!
//! ```
//! use dab::buffer::AtomicBuffer;
//! use gpu_sim::isa::{AtomicAccess, AtomicOp, Value};
//!
//! let mut buf = AtomicBuffer::new(4, true);
//! let acc: Vec<_> = (0..8)
//!     .map(|l| AtomicAccess::new(l, 0x100, Value::F32(1.0)))
//!     .collect();
//! // Eight same-address adds fuse into a single entry.
//! assert!(buf.try_insert(AtomicOp::AddF32, &acc));
//! assert_eq!(buf.len(), 1);
//! assert_eq!(buf.drain()[0].arg.as_f32(), 8.0);
//! ```

use gpu_sim::isa::{AtomicAccess, AtomicOp, Value};
use gpu_sim::mem::packet::RopOp;

/// One atomic buffer entry: `(address, argument, opcode)` plus an implicit
/// valid bit (entries in the vector are valid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferEntry {
    /// Byte address of the 32-bit cell.
    pub addr: u64,
    /// Reduction opcode.
    pub op: AtomicOp,
    /// Accumulated argument (locally reduced if fused).
    pub arg: Value,
}

impl BufferEntry {
    /// Converts the entry to the ROP operation it commits as.
    pub fn to_rop(self) -> RopOp {
        RopOp {
            addr: self.addr,
            op: self.op,
            arg: self.arg,
        }
    }
}

/// A fixed-capacity atomic buffer with optional atomic fusion.
#[derive(Debug, Clone)]
pub struct AtomicBuffer {
    entries: Vec<BufferEntry>,
    capacity: usize,
    fusion: bool,
    /// Sticky full bit: set when an insertion fails, cleared by drain.
    full_bit: bool,
    fused_ops: u64,
    total_ops: u64,
}

impl AtomicBuffer {
    /// Creates a buffer with `capacity` entries; `fusion` enables local
    /// reduction of same-address same-opcode operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, fusion: bool) -> Self {
        assert!(capacity > 0, "atomic buffer needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            fusion,
            full_bit: false,
            fused_ops: 0,
            total_ops: 0,
        }
    }

    /// Attempts to insert a whole warp instruction's accesses, in lane
    /// order (the deterministic intra-warp fill order of Section IV-B).
    ///
    /// All-or-nothing: if the accesses do not fit — after accounting for
    /// fusion opportunities against both resident entries and each other —
    /// the buffer is left unchanged, the full bit is set, and `false` is
    /// returned (the warp must stall until the next flush).
    pub fn try_insert(&mut self, op: AtomicOp, accesses: &[AtomicAccess]) -> bool {
        // Dry run: how many new slots would this instruction need?
        let mut new_addrs: Vec<u64> = Vec::new();
        let mut needed = 0usize;
        for acc in accesses {
            let fusable = self.fusion
                && op.fusible()
                && (self
                    .entries
                    .iter()
                    .any(|e| e.addr == acc.addr && e.op == op)
                    || new_addrs.contains(&acc.addr));
            if !fusable {
                needed += 1;
                if self.fusion && op.fusible() {
                    new_addrs.push(acc.addr);
                }
            }
        }
        if self.entries.len() + needed > self.capacity {
            self.full_bit = true;
            return false;
        }
        // Commit, in lane order.
        for acc in accesses {
            self.total_ops += 1;
            if self.fusion && op.fusible() {
                if let Some(e) = self
                    .entries
                    .iter_mut()
                    .find(|e| e.addr == acc.addr && e.op == op)
                {
                    e.arg = op.fuse(e.arg, acc.arg);
                    self.fused_ops += 1;
                    continue;
                }
            }
            self.entries.push(BufferEntry {
                addr: acc.addr,
                op,
                arg: acc.arg,
            });
        }
        true
    }

    /// Drains all entries in fill order, clearing the full bit.
    pub fn drain(&mut self) -> Vec<BufferEntry> {
        self.full_bit = false;
        std::mem::take(&mut self.entries)
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an insertion has failed since the last drain (the hardware
    /// full bit).
    pub fn full_bit(&self) -> bool {
        self.full_bit
    }

    /// Configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Operations locally reduced away by fusion since creation.
    pub fn fused_ops(&self) -> u64 {
        self.fused_ops
    }

    /// Total operations accepted since creation.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(lane: usize, addr: u64, v: f32) -> AtomicAccess {
        AtomicAccess::new(lane, addr, Value::F32(v))
    }

    #[test]
    fn inserts_in_lane_order() {
        let mut buf = AtomicBuffer::new(8, false);
        let a = [acc(0, 0x10, 1.0), acc(1, 0x20, 2.0), acc(2, 0x30, 3.0)];
        assert!(buf.try_insert(AtomicOp::AddF32, &a));
        let drained = buf.drain();
        assert_eq!(
            drained.iter().map(|e| e.addr).collect::<Vec<_>>(),
            vec![0x10, 0x20, 0x30]
        );
    }

    #[test]
    fn rejects_when_full_and_sets_full_bit() {
        let mut buf = AtomicBuffer::new(2, false);
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0, 1.0), acc(1, 4, 1.0)]));
        assert!(!buf.full_bit());
        assert!(!buf.try_insert(AtomicOp::AddF32, &[acc(0, 8, 1.0)]));
        assert!(buf.full_bit());
        // All-or-nothing: nothing was added.
        assert_eq!(buf.len(), 2);
        buf.drain();
        assert!(!buf.full_bit());
        assert!(buf.is_empty());
    }

    #[test]
    fn fusion_combines_same_address() {
        let mut buf = AtomicBuffer::new(2, true);
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0x40, 2.3)]));
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0x40, 4.4)]));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.fused_ops(), 1);
        let e = buf.drain()[0];
        assert_eq!(e.arg.as_f32(), 2.3f32 + 4.4f32);
    }

    #[test]
    fn fusion_within_one_instruction() {
        let mut buf = AtomicBuffer::new(1, true);
        let a: Vec<_> = (0..32).map(|l| acc(l, 0x40, 1.0)).collect();
        assert!(buf.try_insert(AtomicOp::AddF32, &a));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.drain()[0].arg.as_f32(), 32.0);
    }

    #[test]
    fn fusion_respects_opcode() {
        let mut buf = AtomicBuffer::new(4, true);
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0x40, 1.0)]));
        assert!(buf.try_insert(AtomicOp::MaxF32, &[acc(0, 0x40, 5.0)]));
        assert_eq!(buf.len(), 2, "different opcodes must not fuse");
    }

    #[test]
    fn no_fusion_when_disabled() {
        let mut buf = AtomicBuffer::new(8, false);
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0x40, 1.0)]));
        assert!(buf.try_insert(AtomicOp::AddF32, &[acc(0, 0x40, 1.0)]));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.fused_ops(), 0);
    }

    #[test]
    fn exch_never_fuses() {
        let mut buf = AtomicBuffer::new(8, true);
        assert!(buf.try_insert(
            AtomicOp::ExchB32,
            &[AtomicAccess::new(0, 0x40, Value::U32(1))]
        ));
        assert!(buf.try_insert(
            AtomicOp::ExchB32,
            &[AtomicAccess::new(0, 0x40, Value::U32(2))]
        ));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn fusion_preserves_deterministic_local_order() {
        // Fusing in lane order is itself a deterministic f32 reduction.
        let run = || {
            let mut buf = AtomicBuffer::new(4, true);
            let a: Vec<_> = (0..16)
                .map(|l| acc(l, 0x40, 0.1 * (l + 1) as f32))
                .collect();
            buf.try_insert(AtomicOp::AddF32, &a);
            buf.drain()[0].arg.to_bits()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dry_run_counts_fusion_against_new_entries() {
        // Capacity 2; instruction touches addresses [A, B, A]: needs 2 slots.
        let mut buf = AtomicBuffer::new(2, true);
        let a = [acc(0, 0x10, 1.0), acc(1, 0x20, 1.0), acc(2, 0x10, 1.0)];
        assert!(buf.try_insert(AtomicOp::AddF32, &a));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn to_rop_roundtrip() {
        let e = BufferEntry {
            addr: 0xB0BA,
            op: AtomicOp::AddF32,
            arg: Value::F32(1.0),
        };
        let r = e.to_rop();
        assert_eq!(r.addr, 0xB0BA);
        assert_eq!(r.arg.as_f32(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        AtomicBuffer::new(0, false);
    }
}
