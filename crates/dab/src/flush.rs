//! Partition-side flush reordering (Section IV-D, Fig. 8).
//!
//! During a buffer flush, every SM pushes its (deterministic) stream of
//! flush transactions into the interconnect, whose arbitration is *not*
//! deterministic. Each memory partition therefore restores a deterministic
//! order before handing atomics to its ROP:
//!
//! 1. Pre-flush messages announce how many transactions to expect from each
//!    SM (Fig. 8a). The partition waits until it has heard from every SM.
//! 2. Arriving transactions carry `(sm, seq)`; the partition serves them in
//!    round-robin order over SMs — `(seq 0, sm 0), (seq 0, sm 1), …` —
//!    buffering out-of-order arrivals in a *flush buffer* (Fig. 8c/d).
//! 3. SMs whose expected count is exhausted are skipped.
//!
//! The buffered transactions would be held in a virtual write queue carved
//! out of the L2 (Stuecheli et al., ISCA 2010); the `vwq_mimic` option
//! models its cost by evicting one L2 sector per out-of-order atomic.

use std::collections::BTreeMap;

use gpu_sim::mem::packet::RopOp;
use gpu_sim::mem::partition::{AckTarget, MemPartition, RopWork};

/// Per-partition reorder state for one flush epoch.
#[derive(Debug)]
pub struct PartitionReorder {
    num_sms: usize,
    /// Expected transaction count per SM (`None` until its pre-flush
    /// message arrives).
    expected: Vec<Option<u32>>,
    received_preflush: usize,
    /// Round-robin cursor: next (round, sm) to serve.
    round: u32,
    sm_cursor: usize,
    /// Out-of-order arrivals: the "flush buffer".
    pending: BTreeMap<(u32, usize), Vec<RopOp>>,
    served: u64,
    /// Peak flush-buffer occupancy (reorder hardware sizing statistic).
    peak_pending: usize,
}

impl PartitionReorder {
    /// Creates reorder state for a machine with `num_sms` SMs.
    pub fn new(num_sms: usize) -> Self {
        Self {
            num_sms,
            expected: vec![None; num_sms],
            received_preflush: 0,
            round: 0,
            sm_cursor: 0,
            pending: BTreeMap::new(),
            served: 0,
            peak_pending: 0,
        }
    }

    /// Resets for a new flush epoch.
    pub fn reset(&mut self) {
        debug_assert!(self.pending.is_empty(), "reset with buffered flushes");
        self.expected.iter_mut().for_each(|e| *e = None);
        self.received_preflush = 0;
        self.round = 0;
        self.sm_cursor = 0;
        self.served = 0;
    }

    /// Records a pre-flush message from `sm` (Fig. 8a).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate pre-flush from the same SM in one epoch.
    pub fn on_pre_flush(&mut self, sm: usize, count: u32, part: &mut MemPartition) {
        assert!(
            self.expected[sm].is_none(),
            "duplicate pre-flush from SM {sm}"
        );
        self.expected[sm] = Some(count);
        self.received_preflush += 1;
        self.try_serve(part);
    }

    /// Records an arriving flush transaction (Fig. 8b), buffering it if out
    /// of order and serving everything now in order.
    pub fn on_entry(
        &mut self,
        sm: usize,
        seq: u32,
        ops: Vec<RopOp>,
        part: &mut MemPartition,
        vwq_mimic: bool,
    ) {
        let key = (seq, sm);
        let in_order = self.all_preflush_received() && self.is_next(sm, seq);
        if !in_order && vwq_mimic {
            // Each buffered atomic repurposes an L2 sector as reorder space.
            for op in &ops {
                part.evict_sector_for_vwq(op.addr);
            }
        }
        self.pending.insert(key, ops);
        self.peak_pending = self.peak_pending.max(self.pending.len());
        self.try_serve(part);
    }

    fn all_preflush_received(&self) -> bool {
        self.received_preflush == self.num_sms
    }

    fn is_next(&self, sm: usize, seq: u32) -> bool {
        seq == self.round && sm == self.sm_cursor
    }

    /// Advances the cursor past SMs with no transaction in this round.
    fn advance_cursor(&mut self) {
        loop {
            if self.sm_cursor + 1 < self.num_sms {
                self.sm_cursor += 1;
            } else {
                self.sm_cursor = 0;
                self.round += 1;
            }
            if self.is_done() {
                return;
            }
            let expects = self.expected[self.sm_cursor].unwrap_or(0);
            if expects > self.round {
                return;
            }
        }
    }

    /// Positions the cursor on a served slot (skipping exhausted SMs), then
    /// serves every in-order pending transaction.
    fn try_serve(&mut self, part: &mut MemPartition) {
        if !self.all_preflush_received() {
            return;
        }
        // The initial cursor may point at an SM with zero transactions.
        while !self.is_done() && self.expected[self.sm_cursor].unwrap_or(0) <= self.round {
            self.advance_cursor();
        }
        while !self.is_done() {
            let key = (self.round, self.sm_cursor);
            let Some(ops) = self.pending.remove(&key) else {
                break;
            };
            let sm = self.sm_cursor;
            part.enqueue_rop(RopWork {
                ops,
                ack: AckTarget::FlushSm { sm },
            });
            self.served += 1;
            self.advance_cursor();
        }
    }

    /// Total transactions expected this epoch (0 until all pre-flush
    /// messages have arrived).
    pub fn total_expected(&self) -> u64 {
        if !self.all_preflush_received() {
            return 0;
        }
        self.expected.iter().map(|e| e.unwrap_or(0) as u64).sum()
    }

    /// Whether every expected transaction has been served to the ROP.
    pub fn is_done(&self) -> bool {
        self.all_preflush_received() && self.served == self.total_expected()
    }

    /// Transactions currently buffered out of order.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Peak out-of-order occupancy observed (flush-buffer sizing).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::isa::{AtomicOp, Value};
    use gpu_sim::ndet::NdetSource;
    use gpu_sim::values::ValueMem;

    fn part() -> MemPartition {
        MemPartition::new(0, &GpuConfig::tiny(), 0)
    }

    fn op(v: f32) -> Vec<RopOp> {
        vec![RopOp {
            addr: 0x100,
            op: AtomicOp::AddF32,
            arg: Value::F32(v),
        }]
    }

    fn drain(part: &mut MemPartition) -> (f32, u64) {
        let mut values = ValueMem::new();
        let mut ndet = NdetSource::disabled();
        for cycle in 0..100_000 {
            part.tick(cycle, &mut values, &mut ndet);
            if !part.is_busy() {
                break;
            }
        }
        (values.read_f32(0x100), values.atomics_applied())
    }

    #[test]
    fn round_robin_order_restored() {
        // 2 SMs, 2 transactions each, arriving badly out of order.
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        r.on_entry(1, 1, op(8.0), &mut p, false);
        r.on_entry(0, 1, op(4.0), &mut p, false);
        assert_eq!(p.rop_queue_len(), 0, "nothing served before pre-flush");
        r.on_pre_flush(0, 2, &mut p);
        r.on_pre_flush(1, 2, &mut p);
        assert_eq!(p.rop_queue_len(), 0, "round 0 still missing");
        r.on_entry(0, 0, op(1.0), &mut p, false);
        assert_eq!(p.rop_queue_len(), 1);
        r.on_entry(1, 0, op(2.0), &mut p, false);
        // Everything unblocks: order is (0,0),(1,0),(0,1),(1,1).
        assert_eq!(p.rop_queue_len(), 4);
        assert!(r.is_done());
        let (sum, n) = drain(&mut p);
        assert_eq!(n, 4);
        assert_eq!(sum, 15.0);
    }

    #[test]
    fn skips_exhausted_sms() {
        // SM 0 sends 1 transaction, SM 1 sends 3.
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        r.on_pre_flush(0, 1, &mut p);
        r.on_pre_flush(1, 3, &mut p);
        r.on_entry(1, 0, op(1.0), &mut p, false);
        r.on_entry(1, 1, op(2.0), &mut p, false);
        r.on_entry(1, 2, op(3.0), &mut p, false);
        assert_eq!(p.rop_queue_len(), 0, "waiting on SM 0's round 0");
        r.on_entry(0, 0, op(4.0), &mut p, false);
        assert_eq!(p.rop_queue_len(), 4);
        assert!(r.is_done());
    }

    #[test]
    fn zero_count_sm_skipped_entirely() {
        let mut r = PartitionReorder::new(3);
        let mut p = part();
        r.on_pre_flush(0, 0, &mut p);
        r.on_pre_flush(1, 2, &mut p);
        r.on_pre_flush(2, 0, &mut p);
        r.on_entry(1, 0, op(1.0), &mut p, false);
        r.on_entry(1, 1, op(2.0), &mut p, false);
        assert!(r.is_done());
        assert_eq!(p.rop_queue_len(), 2);
    }

    #[test]
    fn empty_epoch_is_done_immediately() {
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        r.on_pre_flush(0, 0, &mut p);
        assert!(!r.is_done(), "must wait for all pre-flush messages");
        r.on_pre_flush(1, 0, &mut p);
        assert!(r.is_done());
    }

    #[test]
    fn deterministic_regardless_of_arrival_order() {
        let arrivals = [
            vec![
                (0usize, 0u32, 1.0f32),
                (1, 0, 2.0),
                (0, 1, 4.0),
                (1, 1, 8.0),
            ],
            vec![(1, 1, 8.0), (0, 1, 4.0), (1, 0, 2.0), (0, 0, 1.0)],
        ];
        let mut sums = Vec::new();
        for order in &arrivals {
            let mut r = PartitionReorder::new(2);
            let mut p = part();
            r.on_pre_flush(0, 2, &mut p);
            r.on_pre_flush(1, 2, &mut p);
            for &(sm, seq, v) in order {
                // Use magnitudes that expose ordering differences.
                r.on_entry(sm, seq, op(v * 1e7 + 0.1), &mut p, false);
            }
            assert!(r.is_done());
            let (sum, _) = drain(&mut p);
            sums.push(sum.to_bits());
        }
        assert_eq!(sums[0], sums[1]);
    }

    #[test]
    fn peak_pending_tracks_flush_buffer() {
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        r.on_pre_flush(0, 2, &mut p);
        r.on_pre_flush(1, 2, &mut p);
        r.on_entry(1, 1, op(1.0), &mut p, false);
        r.on_entry(0, 1, op(1.0), &mut p, false);
        assert_eq!(r.pending_len(), 2);
        assert_eq!(r.peak_pending(), 2);
        r.on_entry(0, 0, op(1.0), &mut p, false);
        r.on_entry(1, 0, op(1.0), &mut p, false);
        assert_eq!(r.pending_len(), 0);
        assert_eq!(r.peak_pending(), 3);
    }

    #[test]
    fn vwq_mimic_evicts() {
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        // Warm the L2 sector.
        p.enqueue_rop(RopWork {
            ops: op(0.0),
            ack: AckTarget::None,
        });
        drain(&mut p);
        let misses_before = p.stats().l2_misses;
        r.on_pre_flush(0, 1, &mut p);
        r.on_pre_flush(1, 1, &mut p);
        // Out-of-order arrival evicts the sector.
        r.on_entry(1, 0, op(1.0), &mut p, true);
        r.on_entry(0, 0, op(1.0), &mut p, true);
        drain(&mut p);
        assert!(p.stats().l2_misses > misses_before);
    }

    #[test]
    #[should_panic(expected = "duplicate pre-flush")]
    fn duplicate_preflush_panics() {
        let mut r = PartitionReorder::new(2);
        let mut p = part();
        r.on_pre_flush(0, 1, &mut p);
        r.on_pre_flush(0, 1, &mut p);
    }

    #[test]
    fn reset_allows_new_epoch() {
        let mut r = PartitionReorder::new(1);
        let mut p = part();
        r.on_pre_flush(0, 1, &mut p);
        r.on_entry(0, 0, op(1.0), &mut p, false);
        assert!(r.is_done());
        r.reset();
        assert!(!r.is_done());
        r.on_pre_flush(0, 1, &mut p);
        r.on_entry(0, 0, op(1.0), &mut p, false);
        assert!(r.is_done());
    }
}
