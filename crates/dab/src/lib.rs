//! # Deterministic Atomic Buffering (DAB)
//!
//! A faithful reproduction of *Deterministic Atomic Buffering* (Chou, Ng,
//! Cattell, Intan, Sinclair, Devietti, Rogers, Aamodt — MICRO 2020): a GPU
//! architecture extension that makes atomic-reduction workloads (graph
//! analytics, ML training) *bitwise deterministic* at a fraction of the cost
//! of strongly deterministic designs like GPUDet.
//!
//! The key ideas, mapped to modules:
//!
//! - [`buffer`] — `red` instructions write into small per-warp or
//!   per-scheduler **atomic buffers** instead of global memory, with
//!   **atomic fusion** locally reducing same-address operations;
//! - determinism-aware warp scheduling (SRR / GTRR / GTAR / GWAT, in
//!   [`gpu_sim::sched`]) makes the shared buffer fill order reproducible;
//! - [`flush`] — buffers are made globally visible through a deterministic
//!   **global flush protocol**: pre-flush messages, per-partition
//!   round-robin reordering, and a no-overlap rule;
//! - [`model`] — [`DabModel`] ties it together as a pluggable
//!   [`gpu_sim::exec::ExecutionModel`], with every design axis of the
//!   paper's evaluation in [`DabConfig`].
//!
//! # Examples
//!
//! Running the same atomic-heavy kernel under two different hardware-timing
//! seeds produces bitwise identical results:
//!
//! ```
//! use dab::{DabConfig, DabModel};
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::engine::GpuSim;
//! use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
//! use gpu_sim::kernel::{CtaSpec, KernelGrid};
//! use gpu_sim::ndet::NdetSource;
//!
//! let grid = || {
//!     let ctas = (0..8)
//!         .map(|c| {
//!             CtaSpec::new(
//!                 c,
//!                 vec![WarpProgram::new(
//!                     vec![Instr::Red {
//!                         op: AtomicOp::AddF32,
//!                         accesses: (0..32)
//!                             .map(|l| AtomicAccess::new(l, 0x100, Value::F32(0.1 * (l + 1) as f32)))
//!                             .collect(),
//!                     }],
//!                     32,
//!                 )],
//!             )
//!         })
//!         .collect();
//!     KernelGrid::new("reduce", ctas)
//! };
//! let run = |seed| {
//!     let gpu = GpuConfig::tiny();
//!     let model = DabModel::new(&gpu, DabConfig::default());
//!     GpuSim::new(gpu, Box::new(model), NdetSource::seeded(seed))
//!         .run(&[grid()])
//!         .digest()
//! };
//! assert_eq!(run(1), run(2));
//! ```

pub mod buffer;
pub mod config;
pub mod flush;
pub mod model;

pub use buffer::AtomicBuffer;
pub use config::{BufferLevel, DabConfig, DabConfigError, Relaxation};
pub use model::DabModel;
