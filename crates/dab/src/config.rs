//! DAB design-space configuration.
//!
//! Every axis the paper evaluates is a field of [`DabConfig`]: buffer
//! placement (warp vs. scheduler level, Figs. 5a/5b), capacity (Fig. 12),
//! determinism-aware scheduler (Fig. 11), atomic fusion (Fig. 13), flush
//! coalescing (Fig. 17), offset flushing (Fig. 16), SM gating (Fig. 14) and
//! the relaxed non-deterministic variants of the limitation study (Fig. 18).

use gpu_sim::sched::SchedKind;

/// Where atomic buffers live (Section IV-B vs IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferLevel {
    /// One buffer per warp (simple, 16× the area). Works with any
    /// scheduler — contents are deterministic from program + lane order.
    Warp,
    /// One buffer per warp scheduler (the paper's main design). Requires a
    /// determinism-aware scheduler so the shared fill order is reproducible.
    Scheduler,
}

/// The limitation-study relaxations of Section VI-B4 (Fig. 18). All of them
/// trade determinism away for performance insight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relaxation {
    /// Fully deterministic DAB.
    None,
    /// DAB-NR: atomics go to the ROP in *arrival* order (no reordering at
    /// the memory partition).
    Nr,
    /// DAB-NR-OF: additionally allow buffer flushes to overlap (warps
    /// resume as soon as their entries are pushed, before write-backs).
    NrOf,
    /// DAB-NR-CIF: additionally flush at cluster granularity — each cluster
    /// flushes independently when full, removing the GPU-wide implicit
    /// barrier.
    NrCif,
}

impl Relaxation {
    /// Whether this variant still guarantees deterministic results.
    pub fn is_deterministic(self) -> bool {
        self == Relaxation::None
    }
}

/// Full DAB configuration.
///
/// The default is the paper's headline configuration
/// (`GWAT-64-AF-Coalescing`, Fig. 10): scheduler-level buffers, 64 entries,
/// GWAT scheduling, atomic fusion and flush coalescing on.
#[derive(Debug, Clone, PartialEq)]
pub struct DabConfig {
    /// Buffer placement.
    pub level: BufferLevel,
    /// Entries per buffer (32 / 64 / 128 / 256 in Fig. 12).
    pub capacity: usize,
    /// Warp scheduling policy (must be determinism-aware for
    /// scheduler-level buffers).
    pub scheduler: SchedKind,
    /// Atomic fusion (Section IV-E).
    pub fusion: bool,
    /// Flush coalescing: merge flushed entries per cache sector
    /// (Section IV-F).
    pub coalescing: bool,
    /// Offset flushing: even SMs start flushing at the 32nd entry
    /// (Section VI-B2).
    pub offset_flush: bool,
    /// Distribute CTAs over only the first `n` SMs (Fig. 14 "gating").
    pub active_sms: Option<usize>,
    /// Relaxed variant for the limitation study.
    pub relax: Relaxation,
    /// Mimic the virtual-write-queue implementation of the partition
    /// reorder buffer: every out-of-order atomic evicts an L2 sector
    /// (Section V's feasibility experiment).
    pub vwq_mimic: bool,
    /// Cycles to write one warp instruction into a buffer (the paper treats
    /// buffered atomics like regular arithmetic).
    pub buffer_write_cycles: u32,
    /// Kernels (by name) for which DAB is disabled (Section IV-G: API calls
    /// toggle the determinism hardware off for kernels that do not need
    /// it). Bypassed kernels route atomics straight to memory and release
    /// barriers immediately — i.e. they run like the baseline, except for
    /// the determinism-aware scheduler, which "operates like GTO in the
    /// absence of reductions".
    pub bypass_kernels: std::collections::BTreeSet<String>,
}

impl DabConfig {
    /// The paper's headline configuration: GWAT-64-AF-Coalescing.
    pub fn paper_default() -> Self {
        Self {
            level: BufferLevel::Scheduler,
            capacity: 64,
            scheduler: SchedKind::Gwat,
            fusion: true,
            coalescing: true,
            offset_flush: false,
            active_sms: None,
            relax: Relaxation::None,
            vwq_mimic: false,
            buffer_write_cycles: 4,
            bypass_kernels: std::collections::BTreeSet::new(),
        }
    }

    /// Warp-level buffering with conventional GTO scheduling ("WarpGTO" in
    /// Fig. 11): per-warp contents are deterministic from program order, so
    /// no determinism-aware scheduler is needed.
    pub fn warp_level() -> Self {
        Self {
            level: BufferLevel::Warp,
            capacity: 32,
            scheduler: SchedKind::Gto,
            fusion: false,
            coalescing: false,
            ..Self::paper_default()
        }
    }

    /// Sets the scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the buffer capacity (builder style).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Enables or disables atomic fusion (builder style).
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Enables or disables flush coalescing (builder style).
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Enables or disables offset flushing (builder style).
    pub fn with_offset_flush(mut self, offset: bool) -> Self {
        self.offset_flush = offset;
        self
    }

    /// Selects a relaxed variant (builder style).
    pub fn with_relaxation(mut self, relax: Relaxation) -> Self {
        self.relax = relax;
        self
    }

    /// Restricts CTA distribution to the first `n` SMs (builder style).
    pub fn with_active_sms(mut self, n: usize) -> Self {
        self.active_sms = Some(n);
        self
    }

    /// Disables DAB for the named kernel (builder style; Section IV-G).
    pub fn with_bypass_kernel(mut self, name: impl Into<String>) -> Self {
        self.bypass_kernels.insert(name.into());
        self
    }

    /// Validates internal consistency of the design point, mirroring
    /// [`gpu_sim::config::GpuConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns a [`DabConfigError`] describing the first violated
    /// constraint: zero-entry buffers, a zero buffer-write cost, gating to
    /// zero SMs, or a scheduler-level buffer paired with a scheduler that
    /// cannot make the shared fill order deterministic (the per-warp /
    /// per-scheduler inconsistency of Section IV-C).
    pub fn validate(&self) -> Result<(), DabConfigError> {
        if self.capacity == 0 {
            return Err(DabConfigError::new("buffer must have at least one entry"));
        }
        if self.buffer_write_cycles == 0 {
            return Err(DabConfigError::new(
                "buffer write must cost at least one cycle",
            ));
        }
        if self.active_sms == Some(0) {
            return Err(DabConfigError::new(
                "SM gating must leave at least one active SM",
            ));
        }
        if self.level == BufferLevel::Scheduler
            && !self.scheduler.is_determinism_aware()
            && self.relax.is_deterministic()
        {
            return Err(DabConfigError::new(
                "scheduler-level buffers need a determinism-aware scheduler \
                 (or an explicitly relaxed variant)",
            ));
        }
        if self.offset_flush && self.capacity < 2 {
            return Err(DabConfigError::new(
                "offset flushing needs at least two buffer entries",
            ));
        }
        Ok(())
    }

    /// Short label in the paper's naming style, e.g.
    /// `"GWAT-64-AF-Coalescing"`.
    pub fn label(&self) -> String {
        let mut s = match self.level {
            BufferLevel::Warp => format!("Warp{}-{}", self.scheduler, self.capacity),
            BufferLevel::Scheduler => format!("{}-{}", self.scheduler, self.capacity),
        };
        if self.fusion {
            s.push_str("-AF");
        }
        if self.coalescing {
            s.push_str("-Coalescing");
        }
        if self.offset_flush {
            s.push_str("-Offset");
        }
        match self.relax {
            Relaxation::None => {}
            Relaxation::Nr => s.push_str("-NR"),
            Relaxation::NrOf => s.push_str("-NR-OF"),
            Relaxation::NrCif => s.push_str("-NR-CIF"),
        }
        s
    }
}

impl Default for DabConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Error returned by [`DabConfig::validate`] for inconsistent design points.
///
/// # Examples
///
/// ```
/// use dab::DabConfig;
///
/// let cfg = DabConfig::paper_default().with_capacity(0);
/// assert!(cfg.validate().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DabConfigError {
    message: &'static str,
}

impl DabConfigError {
    fn new(message: &'static str) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for DabConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DAB configuration: {}", self.message)
    }
}

impl std::error::Error for DabConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_headline_config() {
        let c = DabConfig::paper_default();
        assert_eq!(c.level, BufferLevel::Scheduler);
        assert_eq!(c.capacity, 64);
        assert_eq!(c.scheduler, SchedKind::Gwat);
        assert!(c.fusion);
        assert!(c.coalescing);
        assert_eq!(c.label(), "GWAT-64-AF-Coalescing");
    }

    #[test]
    fn builders_compose() {
        let c = DabConfig::paper_default()
            .with_scheduler(SchedKind::Srr)
            .with_capacity(256)
            .with_fusion(false)
            .with_coalescing(false)
            .with_offset_flush(true);
        assert_eq!(c.label(), "SRR-256-Offset");
    }

    #[test]
    fn relaxation_labels() {
        for (r, suffix) in [
            (Relaxation::Nr, "-NR"),
            (Relaxation::NrOf, "-NR-OF"),
            (Relaxation::NrCif, "-NR-CIF"),
        ] {
            let c = DabConfig::paper_default().with_relaxation(r);
            assert!(c.label().ends_with(suffix), "{}", c.label());
            assert!(!r.is_deterministic());
        }
        assert!(Relaxation::None.is_deterministic());
    }

    #[test]
    fn warp_level_label() {
        assert_eq!(DabConfig::warp_level().label(), "WarpGTO-32");
    }

    #[test]
    fn presets_validate() {
        DabConfig::paper_default().validate().unwrap();
        DabConfig::warp_level().validate().unwrap();
        for relax in [Relaxation::Nr, Relaxation::NrOf, Relaxation::NrCif] {
            DabConfig::paper_default()
                .with_relaxation(relax)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = DabConfig::paper_default()
            .with_capacity(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("at least one entry"), "{err}");
    }

    #[test]
    fn zero_write_cost_rejected() {
        let cfg = DabConfig {
            buffer_write_cycles: 0,
            ..DabConfig::paper_default()
        };
        assert!(cfg.validate().unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn zero_active_sms_rejected() {
        let err = DabConfig::paper_default()
            .with_active_sms(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("active SM"), "{err}");
        DabConfig::paper_default()
            .with_active_sms(1)
            .validate()
            .unwrap();
    }

    #[test]
    fn scheduler_level_needs_determinism_aware_scheduler() {
        let cfg = DabConfig::paper_default().with_scheduler(SchedKind::Gto);
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("determinism-aware"), "{err}");
        // Warp-level buffers tolerate any scheduler (contents are
        // deterministic from program order alone)...
        let mut warp = DabConfig::warp_level();
        warp.scheduler = SchedKind::Lrr;
        warp.validate().unwrap();
        // ...and explicitly relaxed variants opt out of the guarantee.
        DabConfig::paper_default()
            .with_scheduler(SchedKind::Gto)
            .with_relaxation(Relaxation::Nr)
            .validate()
            .unwrap();
    }

    #[test]
    fn offset_flush_needs_two_entries() {
        let cfg = DabConfig::paper_default()
            .with_capacity(1)
            .with_offset_flush(true);
        assert!(cfg.validate().is_err());
    }
}
