//! The DAB execution model: deterministic atomic buffering end to end.
//!
//! [`DabModel`] plugs into the simulator's
//! [`gpu_sim::exec::ExecutionModel`] hooks and implements
//! the paper's full mechanism:
//!
//! - **Intra-core determinism**: `red` instructions are written into atomic
//!   buffers ([`crate::buffer`]) in an order fixed by program order, lane
//!   order, and a determinism-aware warp scheduler; CTAs are statically
//!   distributed (Section IV-C5).
//! - **Inter-core determinism**: buffers flush through a global epoch
//!   protocol — pre-flush messages, per-partition round-robin reordering
//!   ([`crate::flush`]), and a no-overlap rule — so the ROPs apply every
//!   floating-point reduction in the same order on every run
//!   (Section IV-D).
//! - **Flush trigger**: an epoch begins only when a flush is *wanted*
//!   (a warp stalled on a full buffer, a fence/barrier, kernel end) and
//!   every scheduler is *sealed* — all its live warps blocked at
//!   deterministic program points — so each buffer's contents are a
//!   deterministic prefix of its fill sequence.
//! - **Optimizations**: atomic fusion (Section IV-E), flush coalescing
//!   (Section IV-F), offset flushing (Section VI-B2).
//! - **Relaxations** (Fig. 18): `NR` (no reordering), `NR-OF` (overlapping
//!   flushes), `NR-CIF` (cluster-independent flushing) — faster, but no
//!   longer deterministic.

use std::collections::{HashMap, VecDeque};

use gpu_sim::config::GpuConfig;
use gpu_sim::exec::{
    AtomicIssue, AtomicRoute, BarrierRelease, ExecutionModel, FenceAction, HookMask, ModelCtx,
    WarpId,
};
use gpu_sim::kernel::CtaDistribution;
use gpu_sim::mem::packet::{AtomKind, Packet, Payload, RopOp, WarpRef};
use gpu_sim::mem::partition::{AckTarget, MemPartition, RopWork};
use gpu_sim::mem::{partition_of, sector_align};
use gpu_sim::sched::SchedKind;

use crate::buffer::{AtomicBuffer, BufferEntry};
use crate::config::{BufferLevel, DabConfig, Relaxation};
use crate::flush::PartitionReorder;

/// Entries the offset-flushing optimization rotates by (Section VI-B2:
/// "every SM with an even SM id starts flushing at the 32nd index").
const OFFSET_FLUSH_ROTATION: usize = 32;

/// Distribution of per-SM flush stream sizes (entries drained from one
/// SM's buffers per epoch). Bounds bracket the interesting regimes: empty
/// streams, a single warp-wide atomic (32 lanes), partial buffers, and
/// full default-capacity buffers.
static FLUSH_ENTRIES_HIST: obs::HistSpec = obs::HistSpec {
    name: "det.dab.flush_entries_hist",
    bounds: &[0, 32, 128, 512, 2048],
    buckets: &[
        "det.dab.flush_entries_hist.le0",
        "det.dab.flush_entries_hist.le32",
        "det.dab.flush_entries_hist.le128",
        "det.dab.flush_entries_hist.le512",
        "det.dab.flush_entries_hist.le2048",
        "det.dab.flush_entries_hist.le_inf",
    ],
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Push,
    Drain,
}

#[derive(Debug)]
enum Buffers {
    /// Indexed `sm * schedulers_per_sm + sched`.
    Scheduler(Vec<AtomicBuffer>),
    /// Keyed `(sm, slot)`, carrying the owner's unique id for deterministic
    /// per-SM stream ordering.
    Warp(HashMap<(usize, usize), (u64, AtomicBuffer)>),
}

/// Deterministic Atomic Buffering as a pluggable execution model.
///
/// # Examples
///
/// ```
/// use dab::{DabConfig, DabModel};
/// use gpu_sim::config::GpuConfig;
/// use gpu_sim::engine::GpuSim;
/// use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
/// use gpu_sim::kernel::{CtaSpec, KernelGrid};
/// use gpu_sim::ndet::NdetSource;
///
/// let cfg = GpuConfig::tiny();
/// let red = Instr::Red {
///     op: AtomicOp::AddF32,
///     accesses: (0..32)
///         .map(|l| AtomicAccess::new(l, 0x1000, Value::F32(0.1)))
///         .collect(),
/// };
/// let cta = CtaSpec::new(0, vec![WarpProgram::new(vec![red], 32)]);
/// let grid = KernelGrid::new("sum", vec![cta]);
/// let model = DabModel::new(&cfg, DabConfig::default());
/// let report = GpuSim::new(cfg, Box::new(model), NdetSource::seeded(7)).run(&[grid]);
/// assert!(report.values.read_f32(0x1000) > 3.1);
/// ```
#[derive(Debug)]
pub struct DabModel {
    dab: DabConfig,
    gpu: GpuConfig,
    buffers: Buffers,
    phase: Phase,
    /// Per-SM: a warp of this SM demanded a flush (stalled atomic, fence,
    /// barrier, or held retirement).
    flush_requested: Vec<bool>,
    reorders: Vec<PartitionReorder>,
    /// Per-cluster queues of flush packets awaiting interconnect room.
    push_queues: Vec<VecDeque<Packet>>,
    /// Per-cluster flush-in-progress flag (NR-CIF mode).
    cluster_active: Vec<bool>,
    /// Cumulative flush transactions sent / acknowledged.
    sent: u64,
    acked: u64,
    /// Cumulative pre-flush messages sent / delivered (the no-overlap rule
    /// also covers protocol messages).
    preflush_sent: u64,
    preflush_delivered: u64,
    /// Total entries currently buffered across all buffers.
    total_entries: u64,
    flush_busy_since: Option<u64>,
    /// Deferred statistic increments, drained into `SimStats` each tick.
    stat_deltas: Vec<(&'static str, u64)>,
    /// Largest per-SM flush stream seen since the gauge was last drained
    /// into `SimStats` (the `det.dab.flush_entries_max` high-watermark).
    flush_entries_peak: u64,
    /// Deferred trace events (buffer fills, flush phases, flush-traffic
    /// injections), drained by the engine after each tick. Only populated
    /// when `gpu.trace` is enabled — all hooks that push run on the
    /// coordinating thread, so the queue order is deterministic.
    trace_events: Vec<obs::Event>,
    /// DAB is toggled off for the currently running kernel (Section IV-G).
    bypassed: bool,
}

impl DabModel {
    /// Builds a DAB model for the given machine and design point.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unusable: scheduler-level buffers with
    /// a scheduler that is not determinism-aware, or a buffer too small to
    /// ever hold one warp-wide atomic.
    pub fn new(gpu: &GpuConfig, dab: DabConfig) -> Self {
        assert!(
            dab.capacity >= gpu.warp_size,
            "buffer capacity {} cannot hold a {}-lane warp atomic",
            dab.capacity,
            gpu.warp_size
        );
        if dab.level == BufferLevel::Scheduler {
            assert!(
                dab.scheduler.is_determinism_aware(),
                "scheduler-level buffers require a determinism-aware scheduler, got {}",
                dab.scheduler
            );
        }
        let buffers = match dab.level {
            BufferLevel::Scheduler => Buffers::Scheduler(
                (0..gpu.num_sms() * gpu.num_schedulers_per_sm)
                    .map(|_| AtomicBuffer::new(dab.capacity, dab.fusion))
                    .collect(),
            ),
            BufferLevel::Warp => Buffers::Warp(HashMap::new()),
        };
        Self {
            buffers,
            phase: Phase::Idle,
            flush_requested: vec![false; gpu.num_sms()],
            reorders: (0..gpu.num_mem_partitions)
                .map(|_| PartitionReorder::new(gpu.num_sms()))
                .collect(),
            push_queues: (0..gpu.num_clusters).map(|_| VecDeque::new()).collect(),
            cluster_active: vec![false; gpu.num_clusters],
            sent: 0,
            acked: 0,
            preflush_sent: 0,
            preflush_delivered: 0,
            total_entries: 0,
            flush_busy_since: None,
            stat_deltas: Vec::new(),
            flush_entries_peak: 0,
            trace_events: Vec::new(),
            bypassed: false,
            gpu: gpu.clone(),
            dab,
        }
    }

    /// The design point this model runs.
    pub fn dab_config(&self) -> &DabConfig {
        &self.dab
    }

    fn bump(&mut self, name: &'static str, n: u64) {
        self.stat_deltas.push((name, n));
    }

    /// Whether summary-level (or deeper) tracing is on for this run.
    fn trace_on(&self) -> bool {
        self.gpu.trace.enabled()
    }

    /// Whether full-detail tracing is on for this run.
    fn trace_full(&self) -> bool {
        self.gpu.trace == obs::TraceMode::Full
    }

    /// Queues a flush-phase transition event (summary level).
    fn trace_flush(&mut self, cycle: u64, phase: obs::FlushPhase) {
        if self.trace_on() {
            self.trace_events.push(obs::Event::Flush { cycle, phase });
        }
    }

    /// Queues injection events for flush-protocol packets the model pushes
    /// into the interconnect itself (the engine only sees SM-side outboxes).
    fn trace_inject(&mut self, cycle: u64, cluster: usize, pkt: &Packet) {
        if self.trace_full() {
            let kind = match pkt.payload {
                Payload::PreFlush { .. } => obs::PacketKind::PreFlush,
                Payload::FlushEntry { .. } => obs::PacketKind::FlushEntry,
                ref other => unreachable!("model injects only flush traffic, got {other:?}"),
            };
            self.trace_events.push(obs::Event::IcntInject {
                cycle,
                cluster: cluster as u32,
                dest: pkt.dest as u32,
                kind,
            });
        }
    }

    fn request_flush(&mut self, sm: usize) {
        self.flush_requested[sm] = true;
    }

    fn buffer_mut(&mut self, warp: &WarpId) -> &mut AtomicBuffer {
        let scheds = self.gpu.num_schedulers_per_sm;
        match &mut self.buffers {
            Buffers::Scheduler(v) => &mut v[warp.sched.sm * scheds + warp.sched.sched],
            Buffers::Warp(m) => {
                &mut m
                    .get_mut(&(warp.sched.sm, warp.slot))
                    .expect("warp buffer exists for live warp")
                    .1
            }
        }
    }

    fn any_entries_in_sm_range(&self, sms: std::ops::Range<usize>) -> bool {
        let scheds = self.gpu.num_schedulers_per_sm;
        match &self.buffers {
            Buffers::Scheduler(v) => sms
                .flat_map(|sm| (0..scheds).map(move |s| sm * scheds + s))
                .any(|i| !v[i].is_empty()),
            Buffers::Warp(m) => m
                .iter()
                .any(|((sm, _), (_, b))| sms.contains(sm) && !b.is_empty()),
        }
    }

    /// Drains SM `sm`'s buffers into one deterministic entry stream:
    /// scheduler-index order for scheduler-level buffers, warp-unique order
    /// for warp-level buffers, entries in fill order within each buffer.
    fn drain_sm_stream(&mut self, sm: usize) -> Vec<BufferEntry> {
        let scheds = self.gpu.num_schedulers_per_sm;
        let mut stream = Vec::new();
        match &mut self.buffers {
            Buffers::Scheduler(v) => {
                for s in 0..scheds {
                    stream.extend(v[sm * scheds + s].drain());
                }
            }
            Buffers::Warp(m) => {
                let mut keys: Vec<(u64, (usize, usize))> = m
                    .iter()
                    .filter(|((s, _), _)| *s == sm)
                    .map(|(k, (unique, _))| (*unique, *k))
                    .collect();
                keys.sort_unstable();
                for (_, k) in keys {
                    stream.extend(m.get_mut(&k).expect("key just listed").1.drain());
                }
            }
        }
        self.total_entries -= stream.len() as u64;
        if self.dab.offset_flush && sm.is_multiple_of(2) && !stream.is_empty() {
            let rot = OFFSET_FLUSH_ROTATION.min(stream.len());
            stream.rotate_left(rot);
        }
        stream
    }

    /// Groups an entry stream into flush transactions: one per cache sector
    /// when coalescing (first-occurrence order), one per entry otherwise.
    fn transactions(&self, stream: Vec<BufferEntry>) -> Vec<Vec<RopOp>> {
        if !self.dab.coalescing {
            return stream.into_iter().map(|e| vec![e.to_rop()]).collect();
        }
        let sector = self.gpu.sector_size as u64;
        let mut order: Vec<u64> = Vec::new();
        let mut groups: HashMap<u64, Vec<RopOp>> = HashMap::new();
        for e in stream {
            let s = sector_align(e.addr, sector);
            let g = groups.entry(s).or_insert_with(|| {
                order.push(s);
                Vec::new()
            });
            g.push(e.to_rop());
        }
        order
            .into_iter()
            .map(|s| groups.remove(&s).expect("group recorded"))
            .collect()
    }

    /// Converts SM `sm`'s buffered entries into pre-flush + transaction
    /// packets. Returns `(pre-flush packets, transaction packets)`.
    fn sm_flush_packets(&mut self, sm: usize, with_preflush: bool) -> (Vec<Packet>, Vec<Packet>) {
        let parts = self.gpu.num_mem_partitions;
        let flit = self.gpu.icnt_flit_size;
        let stream = self.drain_sm_stream(sm);
        let entries = stream.len() as u64;
        let txs = self.transactions(stream);
        let mut seqs = vec![0u32; parts];
        let mut packets = Vec::with_capacity(txs.len());
        for ops in txs {
            let p = partition_of(ops[0].addr, parts);
            debug_assert!(ops.iter().all(|o| partition_of(o.addr, parts) == p));
            let pkt = Packet::new(
                p,
                Payload::FlushEntry {
                    sm,
                    seq: seqs[p],
                    ops,
                },
                flit,
            );
            seqs[p] += 1;
            packets.push(pkt);
        }
        let mut preflush = Vec::new();
        if with_preflush {
            for (p, &expected) in seqs.iter().enumerate() {
                preflush.push(Packet::new(p, Payload::PreFlush { sm, expected }, flit));
            }
            self.preflush_sent += parts as u64;
            self.bump("det.dab.preflush_msgs", parts as u64);
        }
        let n = packets.len() as u64;
        self.sent += n;
        self.bump("det.dab.flush_entries", entries);
        self.bump("det.dab.flush_txs", n);
        self.bump(FLUSH_ENTRIES_HIST.bucket_key(entries), 1);
        self.flush_entries_peak = self.flush_entries_peak.max(entries);
        (preflush, packets)
    }

    /// Queues a cluster's flush traffic: all pre-flush messages, then its
    /// SMs' transaction streams *interleaved* round-robin (the SMs push
    /// through the shared injection port concurrently).
    fn enqueue_cluster_flush(&mut self, cluster: usize, with_preflush: bool) {
        let spc = self.gpu.sms_per_cluster;
        let mut streams: Vec<std::collections::VecDeque<Packet>> = Vec::with_capacity(spc);
        for sm in cluster * spc..(cluster + 1) * spc {
            let (pre, txs) = self.sm_flush_packets(sm, with_preflush);
            self.push_queues[cluster].extend(pre);
            streams.push(txs.into());
        }
        loop {
            let mut any = false;
            for stream in &mut streams {
                if let Some(pkt) = stream.pop_front() {
                    self.push_queues[cluster].push_back(pkt);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    fn start_global_epoch(&mut self, ctx: &mut ModelCtx<'_>) {
        self.phase = Phase::Push;
        self.flush_busy_since = Some(ctx.cycle);
        let with_preflush = self.dab.relax == Relaxation::None;
        if with_preflush {
            for r in &mut self.reorders {
                r.reset();
            }
        }
        for cluster in 0..self.gpu.num_clusters {
            self.enqueue_cluster_flush(cluster, with_preflush);
        }
        self.bump("det.dab.flushes", 1);
        self.trace_flush(ctx.cycle, obs::FlushPhase::Start);
    }

    fn complete_epoch(&mut self, ctx: &mut ModelCtx<'_>) {
        for sm in 0..self.gpu.num_sms() {
            ctx.wake_flush_waiters(sm);
        }
        self.flush_requested.iter_mut().for_each(|f| *f = false);
        if let Some(since) = self.flush_busy_since.take() {
            self.bump("det.dab.flush_cycles", ctx.cycle - since);
        }
        self.phase = Phase::Idle;
        self.trace_flush(ctx.cycle, obs::FlushPhase::Complete);
    }

    fn push_packets(&mut self, ctx: &mut ModelCtx<'_>) -> bool {
        let mut all_empty = true;
        for c in 0..self.push_queues.len() {
            while let Some(head) = self.push_queues[c].front() {
                if ctx.icnt.can_inject_request(c, head.flits) {
                    let pkt = self.push_queues[c].pop_front().expect("front exists");
                    self.trace_inject(ctx.cycle, c, &pkt);
                    ctx.icnt.inject_request(c, pkt);
                } else {
                    break;
                }
            }
            all_empty &= self.push_queues[c].is_empty();
        }
        all_empty
    }

    fn live_total(&self, ctx: &ModelCtx<'_>) -> u32 {
        ctx.census.iter().map(|c| c.live).sum()
    }

    fn want_flush(&self, ctx: &ModelCtx<'_>) -> bool {
        self.flush_requested.iter().any(|&f| f)
            || (ctx.kernel_fully_dispatched && self.live_total(ctx) == 0 && self.total_entries > 0)
    }

    fn tick_global(&mut self, ctx: &mut ModelCtx<'_>) {
        match self.phase {
            Phase::Idle => {
                if self.want_flush(ctx) && ctx.census.iter().all(|c| c.sealed()) {
                    self.start_global_epoch(ctx);
                    self.push_packets(ctx);
                }
            }
            Phase::Push => {
                if self.push_packets(ctx) {
                    if self.dab.relax == Relaxation::NrOf {
                        // Overlapping flushes: resume as soon as everything
                        // is pushed; write-backs drain in the background.
                        self.complete_epoch(ctx);
                    } else {
                        self.phase = Phase::Drain;
                        self.trace_flush(ctx.cycle, obs::FlushPhase::Drain);
                    }
                }
            }
            Phase::Drain => {
                if self.acked == self.sent && self.preflush_delivered == self.preflush_sent {
                    self.complete_epoch(ctx);
                }
            }
        }
    }

    fn tick_cif(&mut self, ctx: &mut ModelCtx<'_>) {
        let spc = self.gpu.sms_per_cluster;
        let scheds = self.gpu.num_schedulers_per_sm;
        for c in 0..self.gpu.num_clusters {
            let sms = c * spc..(c + 1) * spc;
            if self.cluster_active[c] {
                // Push this cluster's packets; once pushed, release it
                // (overlap is inherent to cluster-independent flushing).
                let mut empty = true;
                while let Some(head) = self.push_queues[c].front() {
                    if ctx.icnt.can_inject_request(c, head.flits) {
                        let pkt = self.push_queues[c].pop_front().expect("front exists");
                        self.trace_inject(ctx.cycle, c, &pkt);
                        ctx.icnt.inject_request(c, pkt);
                    } else {
                        empty = false;
                        break;
                    }
                }
                empty &= self.push_queues[c].is_empty();
                if empty {
                    for sm in sms.clone() {
                        ctx.wake_flush_waiters(sm);
                        self.flush_requested[sm] = false;
                    }
                    self.cluster_active[c] = false;
                }
                continue;
            }
            let want = sms.clone().any(|sm| self.flush_requested[sm])
                || (ctx.kernel_fully_dispatched
                    && self.live_total(ctx) == 0
                    && self.any_entries_in_sm_range(sms.clone()));
            let sealed = sms
                .clone()
                .all(|sm| (0..scheds).all(|s| ctx.census[sm * scheds + s].sealed()));
            if want && sealed {
                self.cluster_active[c] = true;
                self.flush_busy_since.get_or_insert(ctx.cycle);
                self.enqueue_cluster_flush(c, false);
                self.bump("det.dab.flushes", 1);
                self.trace_flush(ctx.cycle, obs::FlushPhase::Start);
            }
        }
        if self.cluster_active.iter().all(|&a| !a) {
            if let Some(since) = self.flush_busy_since.take() {
                self.bump("det.dab.flush_cycles", ctx.cycle - since);
                self.trace_flush(ctx.cycle, obs::FlushPhase::Complete);
            }
        }
    }
}

impl ExecutionModel for DabModel {
    fn name(&self) -> String {
        format!("dab-{}", self.dab.label())
    }

    fn replication_key(&self) -> Option<String> {
        // `DabConfig`'s Debug form covers every behavior-affecting knob
        // (buffer geometry, flush policy, scheduler, active SMs), so equal
        // keys guarantee lane-identical behavior per the trait contract.
        Some(format!("dab/{:?}", self.dab))
    }

    fn scheduler_kind(&self) -> SchedKind {
        self.dab.scheduler
    }

    fn register_metrics(&self, registry: &mut obs::MetricsRegistry) {
        registry.counter("det.dab.flushes", "global flush epochs started");
        registry.counter(
            "det.dab.flush_cycles",
            "cycles some flush epoch was in progress",
        );
        registry.counter(
            "det.dab.flush_entries",
            "buffer entries drained across all flushes",
        );
        registry.counter(
            "det.dab.flush_txs",
            "flush transactions sent (post-coalescing packet count)",
        );
        registry.counter(
            "det.dab.preflush_msgs",
            "pre-flush protocol messages sent (strict ordering mode)",
        );
        registry.counter(
            "det.dab.fused_ops",
            "atomic operations absorbed by in-buffer fusion",
        );
        registry.histogram(
            &FLUSH_ENTRIES_HIST,
            "per-SM flush stream size distribution (entries per epoch)",
        );
        registry.gauge(
            "det.dab.flush_entries_max",
            "largest single per-SM flush stream of the run",
        );
    }

    fn commit_hook_mask(&self) -> HookMask {
        // DAB intercepts atomics (buffering), fences and barriers (flush
        // epochs), and retirement (warp-level buffers hold finished warps).
        // Issue gating (`can_issue`/`on_issue`) and stores keep the trait
        // defaults, so clusters whose ready warps are all on ALU/load/store
        // work commit in parallel.
        HookMask::ATOMIC
            .union(HookMask::FENCE)
            .union(HookMask::BARRIER)
            .union(HookMask::RETIRE)
    }

    fn cta_distribution(&self, num_sms: usize) -> CtaDistribution {
        CtaDistribution::Static {
            active_sms: self.dab.active_sms.unwrap_or(num_sms),
        }
    }

    fn on_warp_spawn(&mut self, warp: WarpId) {
        if let Buffers::Warp(m) = &mut self.buffers {
            let prev = m.insert(
                (warp.sched.sm, warp.slot),
                (
                    warp.unique,
                    AtomicBuffer::new(self.dab.capacity, self.dab.fusion),
                ),
            );
            debug_assert!(
                prev.is_none_or(|(_, b)| b.is_empty()),
                "slot reused with non-empty warp buffer"
            );
        }
    }

    fn on_warp_exit(&mut self, warp: WarpId) {
        if let Buffers::Warp(m) = &mut self.buffers {
            if let Some((_, b)) = m.remove(&(warp.sched.sm, warp.slot)) {
                assert!(b.is_empty(), "warp retired with buffered atomics");
            }
        }
    }

    fn can_retire(&mut self, warp: WarpId) -> bool {
        match &self.buffers {
            Buffers::Scheduler(_) => true,
            Buffers::Warp(m) => {
                let empty = m
                    .get(&(warp.sched.sm, warp.slot))
                    .is_none_or(|(_, b)| b.is_empty());
                if !empty {
                    // The paper keeps warps active while their buffer is
                    // non-empty; waiting for a flush reclaims the slot.
                    self.request_flush(warp.sched.sm);
                }
                empty
            }
        }
    }

    fn on_kernel_start(&mut self, name: &str, _total_ctas: usize) {
        self.bypassed = self.dab.bypass_kernels.contains(name);
    }

    fn on_atomic(&mut self, issue: AtomicIssue<'_>, cycle: u64) -> AtomicRoute {
        if self.bypassed {
            return AtomicRoute::ToMemory;
        }
        let sm = issue.warp.sched.sm;
        if issue.kind == AtomKind::Atom {
            // Returning atomics need global ordering: flush everything
            // first, then perform the operation directly at the ROP.
            if self.total_entries == 0 && self.phase == Phase::Idle && self.sent == self.acked {
                return AtomicRoute::ToMemory;
            }
            self.request_flush(sm);
            return AtomicRoute::StallFlush;
        }
        let write_cycles = self.dab.buffer_write_cycles;
        let accesses = issue.accesses;
        let op = issue.op;
        let before = {
            let buf = self.buffer_mut(&issue.warp);
            let before = buf.len();
            if !buf.try_insert(op, accesses) {
                self.request_flush(sm);
                return AtomicRoute::StallFlush;
            }
            before
        };
        let after = self.buffer_mut(&issue.warp).len();
        let added = (after - before) as u64;
        self.total_entries += added;
        let fused = accesses.len() as u64 - added;
        if fused > 0 {
            self.bump("det.dab.fused_ops", fused);
        }
        if self.trace_full() {
            self.trace_events.push(obs::Event::BufFill {
                cycle,
                sm: sm as u32,
                sched: issue.warp.sched.sched as u32,
                len: after as u32,
            });
        }
        AtomicRoute::Buffered {
            cycles: write_cycles,
        }
    }

    fn on_fence(&mut self, warp: WarpId, _cycle: u64) -> FenceAction {
        if self.bypassed {
            return FenceAction::DrainWarp;
        }
        self.request_flush(warp.sched.sm);
        FenceAction::WaitFlush
    }

    fn on_barrier_release(&mut self, sm: usize, _warps: &[WarpId], _cycle: u64) -> BarrierRelease {
        if self.bypassed {
            return BarrierRelease::Immediate;
        }
        // `__syncthreads` includes a CTA-level memory fence (Section IV-A):
        // buffered atomics must become visible before threads proceed.
        self.request_flush(sm);
        BarrierRelease::WaitFlush
    }

    fn on_pre_flush(&mut self, part: &mut MemPartition, sm: usize, expected: u32, _cycle: u64) {
        debug_assert_eq!(self.dab.relax, Relaxation::None);
        self.preflush_delivered += 1;
        self.reorders[part.id()].on_pre_flush(sm, expected, part);
    }

    fn on_flush_entry(
        &mut self,
        part: &mut MemPartition,
        sm: usize,
        seq: u32,
        ops: Vec<RopOp>,
        _cycle: u64,
    ) {
        match self.dab.relax {
            Relaxation::None => {
                self.reorders[part.id()].on_entry(sm, seq, ops, part, self.dab.vwq_mimic);
            }
            // Relaxed: ROP applies in (non-deterministic) arrival order.
            Relaxation::Nr | Relaxation::NrOf | Relaxation::NrCif => {
                part.enqueue_rop(RopWork {
                    ops,
                    ack: AckTarget::FlushSm { sm },
                });
            }
        }
    }

    fn on_flush_ack(&mut self, _sm: usize, _cycle: u64) {
        self.acked += 1;
    }

    fn on_atomic_ack(&mut self, _warp: WarpRef, _kind: AtomKind, _remaining: u32, _cycle: u64) {}

    fn tick(&mut self, ctx: &mut ModelCtx<'_>) {
        if self.dab.relax == Relaxation::NrCif {
            self.tick_cif(ctx);
        } else {
            self.tick_global(ctx);
        }
        for (name, n) in std::mem::take(&mut self.stat_deltas) {
            ctx.stats.bump(name, n);
        }
        if self.flush_entries_peak > 0 {
            ctx.stats
                .gauge_max("det.dab.flush_entries_max", self.flush_entries_peak);
            // The stats gauge keeps the max; reset so quiet ticks skip the
            // map lookup.
            self.flush_entries_peak = 0;
        }
    }

    fn take_trace_events(&mut self) -> Vec<obs::Event> {
        std::mem::take(&mut self.trace_events)
    }

    fn buffered_entries(&self) -> u64 {
        self.total_entries
    }

    fn buffered_entries_per_sm(&self, out: &mut [u64]) {
        let scheds = self.gpu.num_schedulers_per_sm;
        match &self.buffers {
            Buffers::Scheduler(v) => {
                for (i, buf) in v.iter().enumerate() {
                    out[i / scheds] += buf.len() as u64;
                }
            }
            Buffers::Warp(m) => {
                for ((sm, _), (_, buf)) in m {
                    out[*sm] += buf.len() as u64;
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        self.phase == Phase::Idle
            && self.cluster_active.iter().all(|&a| !a)
            && self.sent == self.acked
            && self.preflush_delivered == self.preflush_sent
            && self.total_entries == 0
    }

    fn needs_tick(&self) -> bool {
        // While idle with no cluster flushing, `tick` only probes the
        // flush-start conditions, and every input to those (flush requests,
        // census seals, dispatch status, buffered-entry counts) changes only
        // through engine actions on cycles the engine visits anyway — so
        // skipping the probe on idle cycles cannot change when a flush
        // starts. Buffered entries or in-flight acks alone keep the model
        // non-quiescent but do not require ticking.
        self.phase != Phase::Idle || self.cluster_active.iter().any(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::engine::GpuSim;
    use gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
    use gpu_sim::kernel::{CtaSpec, KernelGrid};
    use gpu_sim::ndet::NdetSource;

    fn order_sensitive_grid(ctas: usize) -> KernelGrid {
        let specs = (0..ctas)
            .map(|c| {
                CtaSpec::new(
                    c,
                    vec![WarpProgram::new(
                        vec![
                            Instr::Alu {
                                cycles: 4,
                                count: 8,
                            },
                            Instr::Red {
                                op: AtomicOp::AddF32,
                                accesses: (0..32)
                                    .map(|l| {
                                        let v = 0.1f32 * (c * 32 + l + 1) as f32;
                                        AtomicAccess::new(l, 0x400, Value::F32(v))
                                    })
                                    .collect(),
                            },
                            Instr::Red {
                                op: AtomicOp::AddF32,
                                accesses: (0..32)
                                    .map(|l| {
                                        AtomicAccess::new(
                                            l,
                                            0x800 + 4 * (l as u64 % 8),
                                            Value::F32(0.3),
                                        )
                                    })
                                    .collect(),
                            },
                        ],
                        32,
                    )],
                )
            })
            .collect();
        KernelGrid::new("sensitive", specs)
    }

    fn run_dab(cfg: DabConfig, seed: u64, ctas: usize) -> (u64, u64) {
        let gpu = GpuConfig::tiny();
        let model = DabModel::new(&gpu, cfg);
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(seed))
            .run(&[order_sensitive_grid(ctas)]);
        (report.digest(), report.cycles())
    }

    #[test]
    fn dab_default_is_deterministic_across_seeds() {
        let digests: Vec<u64> = (0..4)
            .map(|seed| run_dab(DabConfig::paper_default(), seed, 24).0)
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "DAB must be bitwise deterministic: {digests:?}"
        );
    }

    #[test]
    fn dab_all_schedulers_deterministic() {
        for sched in [
            SchedKind::Srr,
            SchedKind::Gtrr,
            SchedKind::Gtar,
            SchedKind::Gwat,
        ] {
            let cfg = DabConfig::paper_default().with_scheduler(sched);
            let a = run_dab(cfg.clone(), 1, 16).0;
            let b = run_dab(cfg, 2, 16).0;
            assert_eq!(a, b, "{sched} must be deterministic");
        }
    }

    #[test]
    fn warp_level_deterministic() {
        let cfg = DabConfig::warp_level();
        let a = run_dab(cfg.clone(), 1, 16).0;
        let b = run_dab(cfg, 5, 16).0;
        assert_eq!(a, b);
    }

    #[test]
    fn computes_correct_sum() {
        let gpu = GpuConfig::tiny();
        let model = DabModel::new(&gpu, DabConfig::paper_default());
        let grid = KernelGrid::new(
            "sum",
            (0..8)
                .map(|c| {
                    CtaSpec::new(
                        c,
                        vec![WarpProgram::new(
                            vec![Instr::Red {
                                op: AtomicOp::AddU32,
                                accesses: (0..32)
                                    .map(|l| AtomicAccess::new(l, 0x100, Value::U32(1)))
                                    .collect(),
                            }],
                            32,
                        )],
                    )
                })
                .collect(),
        );
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(3)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x100), 256);
        assert!(report.stats.counter("det.dab.flushes") >= 1);
    }

    #[test]
    fn fusion_reduces_entries() {
        let gpu = GpuConfig::tiny();
        let grid = || order_sensitive_grid(8);
        let run = |fusion: bool| {
            let model = DabModel::new(&gpu, DabConfig::paper_default().with_fusion(fusion));
            GpuSim::new(gpu.clone(), Box::new(model), NdetSource::disabled()).run(&[grid()])
        };
        let with = run(true);
        let without = run(false);
        assert!(with.stats.counter("det.dab.fused_ops") > 0);
        assert_eq!(without.stats.counter("det.dab.fused_ops"), 0);
        assert!(
            with.stats.counter("det.dab.flush_entries")
                < without.stats.counter("det.dab.flush_entries")
        );
    }

    #[test]
    fn coalescing_reduces_transactions() {
        let gpu = GpuConfig::tiny();
        let run = |coal: bool| {
            let model = DabModel::new(
                &gpu,
                DabConfig::paper_default()
                    .with_fusion(false)
                    .with_coalescing(coal),
            );
            GpuSim::new(gpu.clone(), Box::new(model), NdetSource::disabled())
                .run(&[order_sensitive_grid(8)])
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with.stats.counter("det.dab.flush_txs") < without.stats.counter("det.dab.flush_txs")
        );
        // Same entries either way.
        assert_eq!(
            with.stats.counter("det.dab.flush_entries"),
            without.stats.counter("det.dab.flush_entries")
        );
    }

    #[test]
    fn offset_flush_still_deterministic_and_correct() {
        let cfg = DabConfig::paper_default().with_offset_flush(true);
        let a = run_dab(cfg.clone(), 1, 16).0;
        let b = run_dab(cfg, 9, 16).0;
        assert_eq!(a, b);
    }

    #[test]
    fn relaxed_variants_run_and_are_labelled() {
        for relax in [Relaxation::Nr, Relaxation::NrOf, Relaxation::NrCif] {
            let cfg = DabConfig::paper_default().with_relaxation(relax);
            let gpu = GpuConfig::tiny();
            let model = DabModel::new(&gpu, cfg);
            assert!(model.name().contains("NR"));
            let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1))
                .run(&[order_sensitive_grid(8)]);
            // Integer check: relaxation must not lose operations.
            assert!(report.stats.atomics > 0);
        }
    }

    #[test]
    fn atom_instruction_forces_flush_then_executes() {
        let gpu = GpuConfig::tiny();
        let grid = KernelGrid::new(
            "atom",
            vec![CtaSpec::new(
                0,
                vec![WarpProgram::new(
                    vec![
                        Instr::Red {
                            op: AtomicOp::AddU32,
                            accesses: vec![AtomicAccess::new(0, 0x40, Value::U32(7))],
                        },
                        Instr::Atom {
                            op: AtomicOp::AddU32,
                            accesses: vec![AtomicAccess::new(0, 0x40, Value::U32(1))],
                        },
                    ],
                    1,
                )],
            )],
        );
        let model = DabModel::new(&gpu, DabConfig::paper_default());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x40), 8);
        assert!(report.stats.counter("det.dab.flushes") >= 1);
    }

    #[test]
    fn barrier_forces_flush_visibility() {
        let gpu = GpuConfig::tiny();
        // Warp 0 reduces, barrier, then both warps reduce again; the barrier
        // must flush the first reduction.
        let prog = |first: u32| {
            WarpProgram::new(
                vec![
                    Instr::Red {
                        op: AtomicOp::AddU32,
                        accesses: vec![AtomicAccess::new(0, 0x40, Value::U32(first))],
                    },
                    Instr::Bar,
                    Instr::Red {
                        op: AtomicOp::AddU32,
                        accesses: vec![AtomicAccess::new(0, 0x44, Value::U32(1))],
                    },
                ],
                1,
            )
        };
        let grid = KernelGrid::new("bar", vec![CtaSpec::new(0, vec![prog(3), prog(4)])]);
        let model = DabModel::new(&gpu, DabConfig::paper_default());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x40), 7);
        assert_eq!(report.values.read_u32(0x44), 2);
        assert!(report.stats.counter("det.dab.flushes") >= 2);
    }

    #[test]
    #[should_panic(expected = "determinism-aware")]
    fn scheduler_level_rejects_gto() {
        let gpu = GpuConfig::tiny();
        DabModel::new(
            &gpu,
            DabConfig::paper_default().with_scheduler(SchedKind::Gto),
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_capacity_rejected() {
        let gpu = GpuConfig::tiny();
        DabModel::new(&gpu, DabConfig::paper_default().with_capacity(8));
    }

    #[test]
    fn bypassed_kernels_skip_dab_while_others_stay_deterministic() {
        // Section IV-G: API calls toggle DAB off per kernel. A bypassed
        // kernel behaves like the baseline (timing-dependent f32 results);
        // a subsequent non-bypassed kernel remains bitwise deterministic.
        let gpu = GpuConfig::tiny();
        let hot = |addr: u64, c: usize| Instr::Red {
            op: AtomicOp::AddF32,
            accesses: (0..32)
                .map(|l| {
                    let v = 0.1f32 * ((c * 32 + l + 1) % 97) as f32;
                    AtomicAccess::new(l, addr, Value::F32(v))
                })
                .collect(),
        };
        let grid = |name: &str, addr: u64| {
            KernelGrid::new(
                name,
                (0..16)
                    .map(|c| CtaSpec::new(c, vec![WarpProgram::new(vec![hot(addr, c)], 32)]))
                    .collect(),
            )
        };
        let run = |seed: u64| {
            let cfg = DabConfig::paper_default()
                .with_fusion(false)
                .with_bypass_kernel("free");
            let model = DabModel::new(&gpu, cfg);
            let report = GpuSim::new(gpu.clone(), Box::new(model), NdetSource::seeded(seed))
                .run(&[grid("free", 0x100), grid("det", 0x200)]);
            (
                report.values.read_bits(0x100),
                report.values.read_bits(0x200),
            )
        };
        let results: Vec<(u32, u32)> = (0..6).map(run).collect();
        assert!(
            results.windows(2).all(|w| w[0].1 == w[1].1),
            "non-bypassed kernel must stay deterministic: {results:?}"
        );
        assert!(
            results.windows(2).any(|w| w[0].0 != w[1].0),
            "bypassed kernel should show baseline non-determinism: {results:?}"
        );
    }

    #[test]
    fn bypassed_kernel_avoids_flush_overhead() {
        let gpu = GpuConfig::tiny();
        let grid = order_sensitive_grid(16);
        let run = |bypass: bool| {
            let mut cfg = DabConfig::paper_default();
            if bypass {
                cfg = cfg.with_bypass_kernel(grid.name.clone());
            }
            let model = DabModel::new(&gpu, cfg);
            GpuSim::new(gpu.clone(), Box::new(model), NdetSource::seeded(1))
                .run(std::slice::from_ref(&grid))
        };
        let with_dab = run(false);
        let bypassed = run(true);
        assert_eq!(bypassed.stats.counter("det.dab.flushes"), 0);
        assert!(with_dab.stats.counter("det.dab.flushes") > 0);
    }

    #[test]
    fn flush_counters_account_for_all_entries() {
        let gpu = GpuConfig::tiny();
        let grid = order_sensitive_grid(16);
        let expected = grid.atomics();
        let model = DabModel::new(&gpu, DabConfig::paper_default().with_fusion(false));
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(2)).run(&[grid]);
        // Without fusion every buffered op becomes exactly one flushed entry
        // and eventually one ROP op.
        assert_eq!(report.stats.counter("det.dab.flush_entries"), expected);
        assert_eq!(report.stats.counter("det.rop.ops"), expected);
        // Coalescing merges same-sector entries: fewer transactions than
        // entries is the whole point.
        assert!(report.stats.counter("det.dab.flush_txs") < expected);
    }

    #[test]
    fn preflush_messages_scale_with_flushes() {
        let gpu = GpuConfig::tiny();
        let grid = order_sensitive_grid(12);
        let model = DabModel::new(&gpu, DabConfig::paper_default());
        let report = GpuSim::new(gpu.clone(), Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        let flushes = report.stats.counter("det.dab.flushes");
        let msgs = report.stats.counter("det.dab.preflush_msgs");
        // One message per SM per partition per epoch.
        assert_eq!(
            msgs,
            flushes * (gpu.num_sms() * gpu.num_mem_partitions) as u64
        );
    }

    #[test]
    fn nr_variants_skip_preflush() {
        let gpu = GpuConfig::tiny();
        let grid = order_sensitive_grid(12);
        let model = DabModel::new(
            &gpu,
            DabConfig::paper_default().with_relaxation(Relaxation::Nr),
        );
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        assert_eq!(report.stats.counter("det.dab.preflush_msgs"), 0);
        assert!(report.stats.counter("det.dab.flushes") > 0);
    }

    #[test]
    fn warp_level_holds_finished_warps_until_flush() {
        // A warp whose last instruction is a buffered atomic cannot retire
        // until its warp-level buffer drains; the run must still complete
        // (the can_retire path requests the flush).
        let gpu = GpuConfig::tiny();
        let grid = KernelGrid::new(
            "tail",
            vec![CtaSpec::new(
                0,
                vec![WarpProgram::new(
                    vec![Instr::Red {
                        op: AtomicOp::AddU32,
                        accesses: (0..32)
                            .map(|l| AtomicAccess::new(l, 0x40 + 4 * l as u64, Value::U32(1)))
                            .collect(),
                    }],
                    32,
                )],
            )],
        );
        let model = DabModel::new(&gpu, DabConfig::warp_level());
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        assert_eq!(report.values.read_u32(0x40), 1);
        assert!(report.stats.counter("det.dab.flushes") >= 1);
    }

    #[test]
    fn offset_flush_rotates_even_sm_streams() {
        // Unit-level: drain_sm_stream rotation is observable through the
        // transaction sequence numbers per partition.
        let gpu = GpuConfig::tiny();
        let cfg = DabConfig::paper_default()
            .with_offset_flush(true)
            .with_fusion(false)
            .with_coalescing(false);
        let grid = order_sensitive_grid(8);
        let model = DabModel::new(&gpu, cfg);
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1)).run(&[grid]);
        // Still exact: rotation must lose nothing.
        assert_eq!(
            report.stats.counter("det.dab.flush_entries"),
            report.stats.counter("det.rop.ops")
        );
    }

    #[test]
    fn sm_gating_distributes_to_fewer_sms() {
        let gpu = GpuConfig::tiny();
        let model = DabModel::new(&gpu, DabConfig::paper_default().with_active_sms(1));
        assert_eq!(
            model.cta_distribution(2),
            CtaDistribution::Static { active_sms: 1 }
        );
        let report = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(1))
            .run(&[order_sensitive_grid(8)]);
        assert!(report.cycles() > 0);
    }
}
