//! End-to-end tests for the `dab-perf` binary: exit codes and output
//! for report/compare/history against synthetic results files.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dab-perf"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dab-perf-cli-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn results(cycles: u64, digest: &str, event_secs: f64, speedup: f64) -> String {
    format!(
        r#"{{
  "target": "engine_hot_loop",
  "host": {{ "nproc": 4 }},
  "workloads": [
    {{ "name": "w",
      "det": {{ "cycles": {cycles}, "digest": "{digest}" }},
      "wall": {{ "event_secs": {event_secs}, "speedup": {speedup} }} }}
  ],
  "geomean_speedup": {speedup}
}}"#
    )
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn compare_passes_on_identical_files_and_fails_on_det_drift() {
    let dir = scratch("det");
    let a = write(&dir, "a.json", &results(100, "0xabc", 1.0, 1.5));
    let same = write(&dir, "same.json", &results(100, "0xabc", 1.0, 1.5));
    let drift = write(&dir, "drift.json", &results(101, "0xabc", 1.0, 1.5));

    let ok = bin().args(["compare"]).arg(&a).arg(&same).output().unwrap();
    assert_eq!(ok.status.code(), Some(0), "{}", stdout(&ok));
    assert!(stdout(&ok).contains("PASS"), "{}", stdout(&ok));

    // A det drift fails even with an absurd wall tolerance.
    let bad = bin()
        .args(["compare", "--wall-tolerance", "1000"])
        .arg(&a)
        .arg(&drift)
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "{}", stdout(&bad));
    assert!(
        stdout(&bad).contains("workloads.w.det.cycles"),
        "{}",
        stdout(&bad)
    );
    assert!(stdout(&bad).contains("FAIL"), "{}", stdout(&bad));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_applies_the_wall_tolerance() {
    let dir = scratch("wall");
    let a = write(&dir, "a.json", &results(100, "0xabc", 1.0, 1.5));
    // 30% slower event engine, same det section.
    let slower = write(&dir, "b.json", &results(100, "0xabc", 1.3, 1.5));

    let within = bin()
        .args(["compare", "--wall-tolerance", "0.5"])
        .arg(&a)
        .arg(&slower)
        .output()
        .unwrap();
    assert_eq!(within.status.code(), Some(0), "{}", stdout(&within));

    let beyond = bin()
        .args(["compare", "--wall-tolerance", "0.1"])
        .arg(&a)
        .arg(&slower)
        .output()
        .unwrap();
    assert_eq!(beyond.status.code(), Some(1), "{}", stdout(&beyond));
    assert!(
        stdout(&beyond).contains("workloads.w.wall.event_secs"),
        "{}",
        stdout(&beyond)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_pairs_directories_by_file_name() {
    let base = scratch("dir-a");
    let cand = scratch("dir-b");
    write(&base, "one.json", &results(10, "0x1", 1.0, 1.2));
    write(&base, "two.json", &results(20, "0x2", 2.0, 1.4));
    write(&cand, "one.json", &results(10, "0x1", 1.0, 1.2));
    write(&cand, "two.json", &results(21, "0x2", 2.0, 1.4));

    let out = bin()
        .args(["compare"])
        .arg(&base)
        .arg(&cand)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("== one.json"), "{text}");
    assert!(text.contains("== two.json"), "{text}");

    // A baseline file missing from the candidate side is a usage error,
    // not a silent skip.
    std::fs::remove_file(cand.join("two.json")).unwrap();
    let out = bin()
        .args(["compare"])
        .arg(&base)
        .arg(&cand)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cand).ok();
}

#[test]
fn report_prints_classified_metrics() {
    let dir = scratch("report");
    let a = write(&dir, "a.json", &results(100, "0xabc", 1.0, 1.5));
    let out = bin().args(["report"]).arg(&a).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("det   workloads.w.det.cycles"), "{text}");
    assert!(text.contains("wall  workloads.w.wall.event_secs"), "{text}");
    assert!(text.contains("info  host.nproc"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_append_then_render() {
    let dir = scratch("history");
    let a = write(&dir, "a.json", &results(100, "0xabc", 1.0, 1.5));
    let b = write(&dir, "b.json", &results(100, "0xabc", 0.9, 1.7));
    let hist = dir.join("hist.jsonl");

    for (file, sha) in [(&a, "aaa111"), (&b, "bbb222")] {
        let out = bin()
            .args(["history", "append"])
            .arg(file)
            .arg("--file")
            .arg(&hist)
            .args(["--sha", sha])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    }

    let out = bin()
        .args(["history", "--file"])
        .arg(&hist)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("aaa111"), "{text}");
    assert!(text.contains("bbb222"), "{text}");
    assert!(text.contains("1.500x"), "{text}");
    assert!(text.contains("1.700x"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_2() {
    let out = bin().args(["compare", "only-one.json"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["report", "/nonexistent/x.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn compare_works_against_the_committed_baseline() {
    // The committed BENCH_engine.json must compare clean against itself
    // — guards the classifier against schema drift in the bench writer.
    let baseline = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    let out = bin()
        .args(["compare"])
        .arg(&baseline)
        .arg(&baseline)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}
