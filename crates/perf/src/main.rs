//! The `dab-perf` command-line tool.
//!
//! ```text
//! dab-perf report <results.json>...
//! dab-perf compare <baseline> <candidate> [--wall-tolerance F] [--verbose]
//! dab-perf history [--file <path>]
//! dab-perf history append <results.json> [--file <path>] [--sha <sha>]
//! ```
//!
//! `compare` accepts two files or two directories (directories pair up
//! `*.json` files by name). Exit status: 0 = pass, 1 = regression
//! detected, 2 = usage or I/O error — so CI can distinguish "the build
//! got slower" from "the gate itself is broken".

use dab_perf::compare::{compare, render, Comparison, DEFAULT_WALL_TOLERANCE};
use dab_perf::history;
use dab_perf::json::Json;
use dab_perf::metrics::flatten;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: dab-perf <command> [args]

commands:
  report <results.json>...
      Print every metric of each file with its det/wall/info class.

  compare <baseline> <candidate> [--wall-tolerance F] [--verbose]
      Diff two results files (or two directories of *.json files).
      det metrics must match exactly; wall metrics may degrade up to
      the relative tolerance (default 0.5). Exits 1 on regression.

  history [--file <path>]
      Print the performance trajectory stored in the history file
      (default results/bench_history.jsonl).

  history append <results.json> [--file <path>] [--sha <sha>]
      Distill a results file into one history line and append it.
      The SHA defaults to `git rev-parse --short=12 HEAD`.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    match code {
        Ok(code) => code,
        Err(message) => {
            eprintln!("dab-perf: {}", message.trim_end());
            ExitCode::from(2)
        }
    }
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("report needs at least one results file".to_string());
    }
    for (i, arg) in args.iter().enumerate() {
        let path = Path::new(arg);
        let doc = load_json(path)?;
        if i > 0 {
            println!();
        }
        println!("{}", path.display());
        let metrics = flatten(&doc);
        let path_width = metrics.iter().map(|m| m.path.len()).max().unwrap_or(0);
        for m in &metrics {
            println!(
                "  {:<5} {:<w$}  {}",
                m.class.label(),
                m.path,
                m.value.display(),
                w = path_width
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let mut wall_tolerance = DEFAULT_WALL_TOLERANCE;
    let mut verbose = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--wall-tolerance" => {
                let raw = it.next().ok_or("--wall-tolerance needs a value")?;
                wall_tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        format!("--wall-tolerance must be a non-negative number, got {raw:?}")
                    })?;
            }
            "--verbose" | "-v" => verbose = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown compare flag {other:?}"));
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    let [a, b] = paths.as_slice() else {
        return Err("compare needs exactly a baseline and a candidate".to_string());
    };
    let pairs = pair_up(a, b)?;
    let mut failed = false;
    for (label, a, b) in &pairs {
        let cmp: Comparison = compare(&load_json(a)?, &load_json(b)?, wall_tolerance);
        let n_regressed = cmp.regressions().count();
        if pairs.len() > 1 || !label.is_empty() {
            println!("== {label}");
        }
        let table = render(&cmp, verbose);
        if table.is_empty() {
            println!("all {} metrics match", cmp.deltas.len());
        } else {
            print!("{table}");
        }
        if n_regressed > 0 {
            failed = true;
            println!(
                "FAIL: {n_regressed} regression{} (wall tolerance {:.0}%)",
                if n_regressed == 1 { "" } else { "s" },
                wall_tolerance * 100.0
            );
        } else {
            println!(
                "PASS ({} metrics, wall tolerance {:.0}%)",
                cmp.deltas.len(),
                wall_tolerance * 100.0
            );
        }
    }
    Ok(if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Resolves the compare operands into `(label, baseline, candidate)`
/// pairs: two files become one pair; two directories pair their
/// `*.json` entries by file name (a name present on only one side is a
/// hard error — silently skipping would make the gate vacuous).
fn pair_up(a: &Path, b: &Path) -> Result<Vec<(String, PathBuf, PathBuf)>, String> {
    match (a.is_dir(), b.is_dir()) {
        (false, false) => Ok(vec![(String::new(), a.to_path_buf(), b.to_path_buf())]),
        (true, true) => {
            let names_a = json_names(a)?;
            let names_b = json_names(b)?;
            for name in &names_a {
                if !names_b.contains(name) {
                    return Err(format!(
                        "{} exists in {} but not in {}",
                        name,
                        a.display(),
                        b.display()
                    ));
                }
            }
            Ok(names_a
                .into_iter()
                .map(|name| (name.clone(), a.join(&name), b.join(&name)))
                .collect())
        }
        _ => Err(format!(
            "{} and {} must both be files or both be directories",
            a.display(),
            b.display()
        )),
    }
}

fn json_names(dir: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no *.json files in {}", dir.display()));
    }
    Ok(names)
}

fn cmd_history(args: &[String]) -> Result<ExitCode, String> {
    let mut file = PathBuf::from(history::HISTORY_FILE);
    let mut sha: Option<String> = None;
    let mut append_source: Option<PathBuf> = None;
    let mut appending = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "append" if !appending => appending = true,
            "--file" => {
                file = PathBuf::from(it.next().ok_or("--file needs a path")?);
            }
            "--sha" => {
                sha = Some(it.next().ok_or("--sha needs a value")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown history flag {other:?}"));
            }
            _ if appending && append_source.is_none() => {
                append_source = Some(PathBuf::from(arg));
            }
            other => return Err(format!("unexpected history argument {other:?}")),
        }
    }
    if appending {
        let source = append_source.ok_or("history append needs a results file")?;
        let doc = load_json(&source)?;
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_err(|e| format!("system clock is before the epoch: {e}"))?
            .as_secs();
        let record =
            history::Record::from_results(&doc, sha.unwrap_or_else(history::git_sha), unix_secs);
        history::append(&file, &record)?;
        println!(
            "appended {} @ {} to {}",
            source.display(),
            record.sha,
            file.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let (records, errors) = history::load(&file)?;
    for error in &errors {
        eprintln!("dab-perf: warning: {}: {error}", file.display());
    }
    print!("{}", history::render(&records));
    Ok(ExitCode::SUCCESS)
}
