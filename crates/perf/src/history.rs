//! Append-only performance history.
//!
//! `dab-perf history append <results.json>` distills one results file to
//! a single JSON line — commit SHA, timestamp, host block, headline
//! geomean, per-workload event-engine timings — and appends it to
//! `results/bench_history.jsonl`. The file is append-only on purpose:
//! each line is self-contained, lines never rewrite each other, and a
//! merge conflict is always resolvable by keeping both sides.
//!
//! `dab-perf history` renders the stored trajectory as a table so a
//! slow drift (every commit 2% slower) is visible even though each
//! individual `compare` stayed inside tolerance.

use crate::json::Json;
use crate::metrics::Value;
use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

/// Default history location relative to the repository root.
pub const HISTORY_FILE: &str = "results/bench_history.jsonl";

/// One distilled history record.
#[derive(Debug)]
pub struct Record {
    /// Commit the results were produced at (short SHA, or `"unknown"`).
    pub sha: String,
    /// Seconds since the unix epoch when the record was appended.
    pub unix_secs: u64,
    /// The headline geomean event-vs-dense speedup, if present.
    pub geomean_speedup: Option<f64>,
    /// Per-workload `(name, event_secs, speedup)`.
    pub workloads: Vec<(String, Option<f64>, Option<f64>)>,
    /// The raw host block, re-rendered verbatim.
    pub host: Option<Json>,
}

impl Record {
    /// Distills a parsed results document into a record. `sha` and
    /// `unix_secs` come from the environment, not the document, so
    /// re-appending old results still records *when* it happened.
    pub fn from_results(doc: &Json, sha: String, unix_secs: u64) -> Record {
        let mut workloads = Vec::new();
        if let Some(Json::Arr(items)) = doc.get("workloads") {
            for item in items {
                let Some(name) = item.get("name").and_then(Json::as_str) else {
                    continue;
                };
                workloads.push((
                    name.to_string(),
                    item.get("wall")
                        .and_then(|w| w.get("event_secs"))
                        .and_then(Json::as_f64),
                    item.get("wall")
                        .and_then(|w| w.get("speedup"))
                        .and_then(Json::as_f64),
                ));
            }
        }
        Record {
            sha,
            unix_secs,
            geomean_speedup: doc.get("geomean_speedup").and_then(Json::as_f64),
            workloads,
            host: doc.get("host").cloned(),
        }
    }

    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut members = vec![
            ("sha".to_string(), Json::Str(self.sha.clone())),
            ("unix_secs".to_string(), Json::Num(self.unix_secs as f64)),
        ];
        if let Some(host) = &self.host {
            members.push(("host".to_string(), host.clone()));
        }
        if let Some(g) = self.geomean_speedup {
            members.push(("geomean_speedup".to_string(), Json::Num(g)));
        }
        let workloads = self
            .workloads
            .iter()
            .map(|(name, secs, speedup)| {
                let mut w = vec![("name".to_string(), Json::Str(name.clone()))];
                if let Some(s) = secs {
                    w.push(("event_secs".to_string(), Json::Num(*s)));
                }
                if let Some(s) = speedup {
                    w.push(("speedup".to_string(), Json::Num(*s)));
                }
                Json::Obj(w)
            })
            .collect();
        members.push(("workloads".to_string(), Json::Arr(workloads)));
        Json::Obj(members).render()
    }

    /// Parses one history line back into a record.
    pub fn from_json_line(line: &str) -> Result<Record, String> {
        let doc = Json::parse(line)?;
        let mut workloads = Vec::new();
        if let Some(Json::Arr(items)) = doc.get("workloads") {
            for item in items {
                let Some(name) = item.get("name").and_then(Json::as_str) else {
                    continue;
                };
                workloads.push((
                    name.to_string(),
                    item.get("event_secs").and_then(Json::as_f64),
                    item.get("speedup").and_then(Json::as_f64),
                ));
            }
        }
        Ok(Record {
            sha: doc
                .get("sha")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            unix_secs: doc.get("unix_secs").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            geomean_speedup: doc.get("geomean_speedup").and_then(Json::as_f64),
            workloads,
            host: doc.get("host").cloned(),
        })
    }
}

/// Loads every parseable record from a history file. Unparseable lines
/// are skipped with their error collected, not fatal: a half-written
/// final line (killed run) must not brick the whole history.
pub fn load(path: &Path) -> Result<(Vec<Record>, Vec<String>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::from_json_line(line) {
            Ok(r) => records.push(r),
            Err(e) => errors.push(format!("line {}: {e}", i + 1)),
        }
    }
    Ok((records, errors))
}

/// Appends one record to the history file, creating parent directories
/// as needed.
pub fn append(path: &Path, record: &Record) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    writeln!(file, "{}", record.to_json_line())
        .map_err(|e| format!("cannot append to {}: {e}", path.display()))
}

/// The current short commit SHA, or `"unknown"` outside a git checkout.
pub fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders the trajectory table: one row per record, oldest first.
pub fn render(records: &[Record]) -> String {
    if records.is_empty() {
        return "history is empty\n".to_string();
    }
    // Workload columns, in order of first appearance across the history.
    let mut names: Vec<&str> = Vec::new();
    for r in records {
        for (name, _, _) in &r.workloads {
            if !names.contains(&name.as_str()) {
                names.push(name);
            }
        }
    }
    let mut header = vec!["sha".to_string(), "date".to_string(), "geomean".to_string()];
    for name in &names {
        header.push(format!("{name} s"));
    }
    let mut rows: Vec<Vec<String>> = vec![header];
    for r in records {
        let mut row = vec![
            r.sha.clone(),
            format_date(r.unix_secs),
            r.geomean_speedup
                .map_or("-".to_string(), |g| format!("{g:.3}x")),
        ];
        for name in &names {
            let secs = r
                .workloads
                .iter()
                .find(|(n, _, _)| n == name)
                .and_then(|(_, s, _)| *s);
            row.push(secs.map_or("-".to_string(), |s| Value::Num(s).display()));
        }
        rows.push(row);
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        let line = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ");
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// `unix_secs` as `YYYY-MM-DD` (proleptic Gregorian, UTC). Good enough
/// for a trajectory table; no external time crates in this workspace.
fn format_date(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    // Civil-from-days (Howard Hinnant's algorithm), era-based.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_a_json_line() {
        let doc = Json::parse(include_str!("../../../BENCH_engine.json")).unwrap();
        let rec = Record::from_results(&doc, "abc123def456".to_string(), 1_754_000_000);
        let line = rec.to_json_line();
        let back = Record::from_json_line(&line).unwrap();
        assert_eq!(back.sha, "abc123def456");
        assert_eq!(back.unix_secs, 1_754_000_000);
        assert_eq!(back.geomean_speedup, rec.geomean_speedup);
        assert_eq!(back.workloads, rec.workloads);
        assert_eq!(back.workloads.len(), 2);
        assert!(back
            .workloads
            .iter()
            .all(|(_, s, sp)| s.is_some() && sp.is_some()));
    }

    #[test]
    fn load_skips_garbage_lines() {
        let dir = std::env::temp_dir().join("dab-perf-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        std::fs::write(
            &path,
            "{\"sha\": \"aaa\", \"unix_secs\": 100, \"workloads\": []}\nnot json\n",
        )
        .unwrap();
        let (records, errors) = load(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].sha, "aaa");
        assert_eq!(errors.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn render_shows_one_row_per_record() {
        let records = vec![
            Record {
                sha: "aaa111".to_string(),
                unix_secs: 1_754_000_000,
                geomean_speedup: Some(1.2),
                workloads: vec![("w1".to_string(), Some(0.5), Some(1.1))],
                host: None,
            },
            Record {
                sha: "bbb222".to_string(),
                unix_secs: 1_754_100_000,
                geomean_speedup: Some(1.3),
                workloads: vec![("w1".to_string(), Some(0.4), Some(1.2))],
                host: None,
            },
        ];
        let table = render(&records);
        assert!(table.contains("aaa111"), "{table}");
        assert!(table.contains("bbb222"), "{table}");
        assert!(table.contains("1.200x"), "{table}");
        assert!(table.contains("w1 s"), "{table}");
    }

    #[test]
    fn dates_format_correctly() {
        assert_eq!(format_date(0), "1970-01-01");
        assert_eq!(format_date(1_754_611_200), "2025-08-08");
    }
}
