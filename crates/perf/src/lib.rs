//! `dab-perf` — performance reporting and regression tracking for DAB
//! bench results.
//!
//! The bench harness writes results as plain JSON (`BENCH_engine.json`,
//! `results/*.json`) split into a `det` section that must be bit-stable
//! across runs and a `wall` section of host timings. This crate turns
//! those files into decisions:
//!
//! * [`metrics`] flattens a results document into classified
//!   `(path, value)` metrics using the same det/wall/info namespace
//!   contract `SimStats` enforces at run time.
//! * [`compare`] diffs two documents: exact equality for `det`,
//!   direction-aware relative tolerance for `wall`, and an exit verdict
//!   for CI.
//! * [`history`] distills results into an append-only
//!   `results/bench_history.jsonl` and renders the trajectory, so a
//!   slow per-commit drift is visible even when every individual
//!   compare stayed inside tolerance.
//! * [`json`] is the dependency-free ordered JSON parser/renderer the
//!   rest is built on (the workspace deliberately has no serde).
//!
//! The `dab-perf` binary wraps these as `report`, `compare`, and
//! `history` subcommands; see `main.rs` or `dab-perf --help`.

pub mod compare;
pub mod history;
pub mod json;
pub mod metrics;
