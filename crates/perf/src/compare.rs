//! Two-document comparison with the det/wall regression policy.
//!
//! * `det` metrics must be **exactly equal** — numbers bitwise (they are
//!   integer counters, digests-as-strings, or derived ratios of
//!   deterministic quantities), strings verbatim. Any drift, and any det
//!   metric present in the baseline but missing from the candidate, is a
//!   regression.
//! * `wall` metrics are host timings: the candidate may be *worse* than
//!   the baseline by up to the relative tolerance before it counts as a
//!   regression. "Worse" is direction-aware — higher is worse for
//!   `*secs*`/`*overhead*` leaves, lower is worse for `*speedup*` leaves.
//!   Near-zero baselines (trace overheads wobble around 0.0) are
//!   normalized by an absolute floor instead of their own magnitude.
//! * `info` metrics (host identity) are never compared.
//!
//! Metrics that only exist in the candidate are reported as additions,
//! not failures: growing a results schema must not require regenerating
//! every committed baseline first.

use crate::json::Json;
use crate::metrics::{flatten, Class, Metric, Value};

/// Relative wall-clock tolerance used when the caller passes none.
/// Generous on purpose: CI runners vary widely, and the hard gate is the
/// det section — wall only catches order-of-magnitude cliffs by default.
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.5;

/// Denominator floor for wall deltas, so overheads measured around zero
/// compare by absolute drift instead of exploding relatively.
const WALL_FLOOR: f64 = 0.05;

/// Outcome of one metric's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Values agree (det) or are within tolerance (wall).
    Ok,
    /// Det drift or wall degradation beyond tolerance.
    Regressed,
    /// Wall metric improved beyond tolerance (reported, never fails).
    Improved,
    /// Present only in the candidate.
    Added,
    /// Present only in the baseline (a regression for det metrics).
    Removed,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The flattened path.
    pub path: String,
    /// Its class.
    pub class: Class,
    /// Baseline value, if present.
    pub a: Option<Value>,
    /// Candidate value, if present.
    pub b: Option<Value>,
    /// Signed worse-direction relative delta for wall metrics
    /// (positive = candidate worse), `None` elsewhere.
    pub rel: Option<f64>,
    /// The verdict.
    pub status: Status,
}

/// A full comparison: every metric of either document, in baseline order
/// (candidate-only additions last).
#[derive(Debug)]
pub struct Comparison {
    /// All per-metric deltas.
    pub deltas: Vec<Delta>,
}

impl Comparison {
    /// The deltas that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.status == Status::Regressed)
    }

    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compares candidate `b` against baseline `a`.
pub fn compare(a: &Json, b: &Json, wall_tolerance: f64) -> Comparison {
    let base = flatten(a);
    let cand = flatten(b);
    let mut deltas = Vec::with_capacity(base.len());
    let mut used = vec![false; cand.len()];
    for m in &base {
        let found = cand.iter().position(|c| c.path == m.path);
        match found {
            Some(i) => {
                used[i] = true;
                deltas.push(compare_one(m, &cand[i], wall_tolerance));
            }
            None => deltas.push(Delta {
                path: m.path.clone(),
                class: m.class,
                a: Some(m.value.clone()),
                b: None,
                rel: None,
                status: match m.class {
                    Class::Det => Status::Regressed,
                    Class::Wall | Class::Info => Status::Removed,
                },
            }),
        }
    }
    for (c, used) in cand.iter().zip(&used) {
        if !used {
            deltas.push(Delta {
                path: c.path.clone(),
                class: c.class,
                a: None,
                b: Some(c.value.clone()),
                rel: None,
                status: Status::Added,
            });
        }
    }
    Comparison { deltas }
}

fn compare_one(a: &Metric, b: &Metric, wall_tolerance: f64) -> Delta {
    let status;
    let mut rel = None;
    match a.class {
        Class::Info => status = Status::Ok,
        Class::Det => {
            status = if a.value == b.value {
                Status::Ok
            } else {
                Status::Regressed
            };
        }
        Class::Wall => match (&a.value, &b.value) {
            (Value::Num(x), Value::Num(y)) => {
                let worse = worse_direction_delta(&a.path, *x, *y);
                rel = Some(worse);
                status = if worse > wall_tolerance {
                    Status::Regressed
                } else if worse < -wall_tolerance {
                    Status::Improved
                } else {
                    Status::Ok
                };
            }
            _ => {
                status = if a.value == b.value {
                    Status::Ok
                } else {
                    Status::Regressed
                };
            }
        },
    }
    Delta {
        path: a.path.clone(),
        class: a.class,
        a: Some(a.value.clone()),
        b: Some(b.value.clone()),
        rel,
        status,
    }
}

/// Signed relative delta in the *worse* direction: positive means the
/// candidate `y` is worse than the baseline `x`. Higher is better for
/// speedup-like metrics, worse for everything else (seconds, overheads).
fn worse_direction_delta(path: &str, x: f64, y: f64) -> f64 {
    let denom = x.abs().max(WALL_FLOOR);
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.contains("speedup") {
        (x - y) / denom
    } else {
        (y - x) / denom
    }
}

/// Renders the comparison as an aligned table; `verbose` includes the
/// metrics that agreed, otherwise only notable rows print.
pub fn render(cmp: &Comparison, verbose: bool) -> String {
    let mut rows: Vec<[String; 5]> = Vec::new();
    for d in &cmp.deltas {
        if !verbose && d.status == Status::Ok {
            continue;
        }
        let show = |v: &Option<Value>| v.as_ref().map_or("-".to_string(), Value::display);
        rows.push([
            format!("{:?}", d.status).to_lowercase(),
            d.class.label().to_string(),
            d.path.clone(),
            show(&d.a),
            match d.rel {
                Some(r) => format!("{} ({:+.1}%)", show(&d.b), r * 100.0),
                None => show(&d.b),
            },
        ]);
    }
    if rows.is_empty() {
        return String::new();
    }
    let header = ["status", "class", "metric", "baseline", "candidate"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let mut out = fmt(&header.map(str::to_string));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt(&row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(det_cycles: u64, digest: &str, secs: f64, speedup: f64) -> Json {
        Json::parse(&format!(
            r#"{{ "workloads": [ {{ "name": "w",
                 "det": {{ "cycles": {det_cycles}, "digest": "{digest}" }},
                 "wall": {{ "event_secs": {secs}, "speedup": {speedup} }} }} ],
                 "host": {{ "nproc": 4 }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        let cmp = compare(&a, &a.clone(), DEFAULT_WALL_TOLERANCE);
        assert!(cmp.passed());
        assert!(cmp.deltas.iter().all(|d| d.status == Status::Ok));
    }

    #[test]
    fn det_drift_fails_regardless_of_magnitude() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        let b = doc(101, "0xabc", 1.0, 1.5);
        let cmp = compare(&a, &b, 1e9);
        let bad: Vec<_> = cmp.regressions().map(|d| d.path.clone()).collect();
        assert_eq!(bad, vec!["workloads.w.det.cycles".to_string()]);
    }

    #[test]
    fn digest_drift_fails() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        let b = doc(100, "0xdef", 1.0, 1.5);
        assert!(!compare(&a, &b, DEFAULT_WALL_TOLERANCE).passed());
    }

    #[test]
    fn wall_within_tolerance_passes_beyond_fails() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        // 40% slower: inside the default 50% tolerance.
        assert!(compare(&a, &doc(100, "0xabc", 1.4, 1.5), 0.5).passed());
        // 60% slower: outside.
        let cmp = compare(&a, &doc(100, "0xabc", 1.6, 1.5), 0.5);
        assert!(!cmp.passed());
        assert_eq!(
            cmp.regressions().next().unwrap().path,
            "workloads.w.wall.event_secs"
        );
    }

    #[test]
    fn speedup_is_higher_is_better() {
        let a = doc(100, "0xabc", 1.0, 2.0);
        // Speedup dropped 2.0 -> 0.8: 60% worse, fails at 50%.
        assert!(!compare(&a, &doc(100, "0xabc", 1.0, 0.8), 0.5).passed());
        // Speedup *grew*: improvement, never fails.
        let cmp = compare(&a, &doc(100, "0xabc", 1.0, 4.0), 0.5);
        assert!(cmp.passed());
        assert!(cmp
            .deltas
            .iter()
            .any(|d| d.status == Status::Improved && d.path.ends_with("speedup")));
    }

    #[test]
    fn near_zero_overheads_use_the_absolute_floor() {
        let a = Json::parse(r#"{ "max_trace_off_overhead": 0.001 }"#).unwrap();
        // 0.001 -> 0.03 is a 30x relative jump but only +0.029 absolute:
        // normalized by the 0.05 floor that is +58% — under a 0.6 gate.
        let b = Json::parse(r#"{ "max_trace_off_overhead": 0.03 }"#).unwrap();
        assert!(compare(&a, &b, 0.6).passed());
        let c = Json::parse(r#"{ "max_trace_off_overhead": 0.5 }"#).unwrap();
        assert!(!compare(&a, &c, 0.6).passed());
    }

    #[test]
    fn missing_det_metric_fails_added_metric_passes() {
        let a = Json::parse(r#"{ "runs": [ { "label": "x", "cycles": 5 } ] }"#).unwrap();
        let b = Json::parse(r#"{ "runs": [ { "label": "x" } ] }"#).unwrap();
        let cmp = compare(&a, &b, 0.5);
        assert!(!cmp.passed());
        // The other direction is an addition and passes.
        let cmp = compare(&b, &a, 0.5);
        assert!(cmp.passed());
        assert!(cmp.deltas.iter().any(|d| d.status == Status::Added));
    }

    #[test]
    fn info_differences_never_fail() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        let mut b = doc(100, "0xabc", 1.0, 1.5);
        if let Json::Obj(members) = &mut b {
            for (k, v) in members.iter_mut() {
                if k == "host" {
                    *v = Json::parse(r#"{ "nproc": 64 }"#).unwrap();
                }
            }
        }
        assert!(compare(&a, &b, 0.5).passed());
    }

    #[test]
    fn render_lists_regressions() {
        let a = doc(100, "0xabc", 1.0, 1.5);
        let b = doc(101, "0xabc", 9.0, 1.5);
        let cmp = compare(&a, &b, 0.5);
        let table = render(&cmp, false);
        assert!(table.contains("regressed"), "{table}");
        assert!(table.contains("workloads.w.det.cycles"), "{table}");
        assert!(table.contains("event_secs"), "{table}");
        assert!(table.contains("+800.0%"), "{table}");
    }
}
