//! Flattening a results document into classified metrics.
//!
//! A results JSON tree becomes a flat list of `(path, value)` pairs:
//! object members append their key as a path segment, array elements of
//! objects carrying a string `"name"` member use that name as the segment
//! (so `workloads[0]` reads `workloads.atomic_sum_64k`), and other array
//! elements use their index. Every leaf is then classified by the same
//! namespace contract `SimStats` enforces at run time:
//!
//! * **det** — bit-stable for a given scale/seed: any drift between two
//!   runs is a correctness regression, so `dab-perf compare` demands
//!   exact equality. A path is det-class when it passes under a `det`
//!   object, and by default otherwise (cycles, digests, counters, and
//!   derived ratios of deterministic quantities all live here).
//! * **wall** — host timing: compared with a relative tolerance. A path
//!   is wall-class when it passes under a `wall`, `phase_secs`, or
//!   `replication_sweep` object, or when its leaf names a timing
//!   (`*secs*`, `*overhead*`, `*speedup*`, `*_per_sec`).
//! * **info** — host identity (`host.*`, `workers`): reported, never
//!   compared — two valid runs of the same commit may come from
//!   different machines.

use crate::json::Json;

/// The comparison class of one flattened metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Bit-stable: exact equality required.
    Det,
    /// Host timing: tolerance applies.
    Wall,
    /// Host identity: reported only.
    Info,
}

impl Class {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Class::Det => "det",
            Class::Wall => "wall",
            Class::Info => "info",
        }
    }
}

/// A flattened scalar leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON number.
    Num(f64),
    /// A JSON string (digests, labels).
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl Value {
    /// Rendering for report/compare tables.
    pub fn display(&self) -> String {
        match self {
            Value::Num(x) => {
                if *x == x.trunc() && x.abs() < 9e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x:.6}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// One flattened, classified metric.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Dotted path from the document root, e.g.
    /// `workloads.atomic_sum_64k.det.cycles`.
    pub path: String,
    /// Its comparison class.
    pub class: Class,
    /// The leaf value.
    pub value: Value,
}

/// Classifies a flattened path under the det/wall namespace contract.
pub fn classify(path: &str) -> Class {
    let segments: Vec<&str> = path.split('.').collect();
    let leaf = segments.last().copied().unwrap_or_default();
    if segments.contains(&"host") || leaf == "workers" {
        return Class::Info;
    }
    if segments.contains(&"det") {
        return Class::Det;
    }
    if segments.contains(&"wall")
        || segments.contains(&"phase_secs")
        || segments.contains(&"replication_sweep")
    {
        return Class::Wall;
    }
    if leaf.contains("secs")
        || leaf.contains("overhead")
        || leaf.contains("speedup")
        || leaf.ends_with("_per_sec")
    {
        return Class::Wall;
    }
    Class::Det
}

/// Flattens a parsed document into classified metrics, in document order.
pub fn flatten(doc: &Json) -> Vec<Metric> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(node: &Json, path: String, out: &mut Vec<Metric>) {
    match node {
        Json::Obj(members) => {
            for (key, value) in members {
                // A "name" member already consumed as the path segment of
                // this object carries no extra information.
                if key == "name"
                    && path.ends_with(value.as_str().unwrap_or_default())
                    && value.as_str().is_some_and(|s| !s.is_empty())
                {
                    continue;
                }
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(value, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let segment = item
                    .get("name")
                    .and_then(Json::as_str)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                let child = if path.is_empty() {
                    segment
                } else {
                    format!("{path}.{segment}")
                };
                walk(item, child, out);
            }
        }
        Json::Null => {}
        Json::Bool(b) => push(out, path, Value::Bool(*b)),
        Json::Num(x) => push(out, path, Value::Num(*x)),
        Json::Str(s) => push(out, path, Value::Str(s.clone())),
    }
}

fn push(out: &mut Vec<Metric>, path: String, value: Value) {
    let class = classify(&path);
    out.push(Metric { path, class, value });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_the_namespace_contract() {
        assert_eq!(classify("workloads.w.det.cycles"), Class::Det);
        assert_eq!(classify("workloads.w.det.digest"), Class::Det);
        assert_eq!(classify("workloads.w.wall.event_secs"), Class::Wall);
        assert_eq!(classify("runs.BC_1k/dab.phase_secs.commit"), Class::Wall);
        assert_eq!(classify("replication_sweep.seeds"), Class::Wall);
        assert_eq!(classify("geomean_speedup"), Class::Wall);
        assert_eq!(classify("max_profile_overhead"), Class::Wall);
        assert_eq!(classify("runs.BC_1k/dab.wall_secs"), Class::Wall);
        assert_eq!(classify("runs.BC_1k/dab.cycles_per_sec"), Class::Wall);
        assert_eq!(classify("host.nproc"), Class::Info);
        assert_eq!(classify("workers"), Class::Info);
        // Defaults to det: cycles, digests, derived deterministic ratios.
        assert_eq!(classify("runs.BC_1k/dab.cycles"), Class::Det);
        assert_eq!(classify("runs.BC_1k/dab.digest"), Class::Det);
        assert_eq!(classify("metrics.geomean_dab"), Class::Det);
        assert_eq!(classify("target"), Class::Det);
    }

    #[test]
    fn flatten_uses_names_as_array_segments() {
        let doc = Json::parse(
            r#"{ "workloads": [
                 { "name": "w1", "det": { "cycles": 10 } },
                 { "name": "w2", "det": { "cycles": 20 } } ],
                 "anon": [1, 2] }"#,
        )
        .unwrap();
        let metrics = flatten(&doc);
        let paths: Vec<&str> = metrics.iter().map(|m| m.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "workloads.w1.det.cycles",
                "workloads.w2.det.cycles",
                "anon.0",
                "anon.1"
            ]
        );
        assert_eq!(metrics[0].class, Class::Det);
        assert_eq!(metrics[0].value, Value::Num(10.0));
    }

    #[test]
    fn flatten_keeps_unconsumed_name_leaves() {
        // A "name" member inside an object that was NOT addressed by that
        // name (object not in an array) stays a metric.
        let doc = Json::parse(r#"{ "thing": { "name": "x", "v": 1 } }"#).unwrap();
        let metrics = flatten(&doc);
        assert!(metrics.iter().any(|m| m.path == "thing.name"));
    }
}
