//! Minimal hand-rolled JSON reader/writer.
//!
//! The workspace is built offline with no serde, and the documents
//! `dab-perf` consumes are the repo's own machine-written results files
//! (`results/*.json`, `BENCH_engine.json`, `results/bench_history.jsonl`)
//! — small, ASCII, and regular. This parser covers the full JSON grammar
//! anyway (escapes, nested containers, exponent floats) so a future
//! schema change cannot silently truncate a comparison.
//!
//! Objects preserve insertion order (`Vec` of pairs, not a map): reports
//! print metrics in the order the producing tool wrote them.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the results files stay well
    /// inside the 2^53 integer-exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering (used for history records; round-trips
    /// through [`Json::parse`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&render_num(*x)),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // Integer-valued numbers print without a fraction; `f64::to_string`
    // otherwise round-trips exactly.
    if x == x.trunc() && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            let end = p.pos + 4;
            let slice = p
                .bytes
                .get(p.pos..end)
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
            let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("lone high surrogate".to_string());
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_string());
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| "invalid surrogate pair".to_string());
        }
        char::from_u32(hi).ok_or_else(|| format!("invalid \\u{hi:04x}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_containers_in_order() {
        let doc = Json::parse(r#"{ "b": [1, {"x": true}], "a": "s" }"#).unwrap();
        let Json::Obj(members) = &doc else {
            panic!("not an object")
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap()[0], Json::Num(1.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\": ").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{ "s": "a\"b", "n": 1.25, "i": 42, "arr": [true, null] }"#;
        let doc = Json::parse(text).unwrap();
        let rendered = doc.render();
        assert_eq!(Json::parse(&rendered).unwrap(), doc);
        assert!(rendered.contains("\"i\": 42"), "{rendered}");
    }

    #[test]
    fn parses_the_real_results_schema() {
        let doc = Json::parse(
            r#"{
  "target": "engine_hot_loop",
  "host": { "nproc": 1, "sim_threads": 1, "commit_shard": true, "min_reps": 3 },
  "workloads": [
    { "name": "w",
      "det": { "cycles": 3269, "digest": "0xe88d0f3e5effc624" },
      "wall": { "event_secs": 0.165340, "speedup": 1.0451 } }
  ],
  "geomean_speedup": 1.2373
}"#,
        )
        .unwrap();
        let w = &doc.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            w.get("det").unwrap().get("cycles").unwrap().as_f64(),
            Some(3269.0)
        );
        assert_eq!(
            w.get("det").unwrap().get("digest").unwrap().as_str(),
            Some("0xe88d0f3e5effc624")
        );
    }
}
