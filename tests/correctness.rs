//! Cross-crate functional correctness: the simulated reductions must match
//! the host-side reference algorithms (within floating-point reordering
//! tolerance for `f32`, exactly for integers and the order-fixed locks).

use dab_repro::dab::{DabConfig, DabModel};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::{GpuSim, RunReport};
use dab_repro::gpu_sim::exec::{BaselineModel, ExecutionModel};
use dab_repro::gpu_sim::isa::LockKind;
use dab_repro::gpu_sim::kernel::KernelGrid;
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::gpudet::{GpuDetConfig, GpuDetModel};
use dab_repro::workloads::bc::{bc_trace, delta_addr, sigma_addr};
use dab_repro::workloads::conv::{conv_trace, layer_by_name, WGRAD_BASE};
use dab_repro::workloads::graph::{brandes_delta, brandes_sigma, Graph};
use dab_repro::workloads::microbench::{
    atomic_sum_grid, lock_sum_grid, reference_sum, OUTPUT_ADDR,
};
use dab_repro::workloads::pagerank::{pagerank_trace, rank_next_addr};
use dab_repro::workloads::scale::Scale;

fn gpu() -> GpuConfig {
    GpuConfig::tiny()
}

fn all_models() -> Vec<Box<dyn ExecutionModel>> {
    vec![
        Box::new(BaselineModel::new()),
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        Box::new(GpuDetModel::new(&gpu(), GpuDetConfig::default())),
    ]
}

fn run(model: Box<dyn ExecutionModel>, kernels: &[KernelGrid]) -> RunReport {
    GpuSim::new(gpu(), model, NdetSource::seeded(17)).run(kernels)
}

fn close(got: f32, want: f32, rel: f32) -> bool {
    (got - want).abs() <= want.abs().max(1.0) * rel
}

#[test]
fn atomic_sum_close_to_reference_under_every_model() {
    let n = 2048;
    let want = reference_sum(n);
    for model in all_models() {
        let name = model.name();
        let report = run(model, &[atomic_sum_grid(n, OUTPUT_ADDR)]);
        let got = report.values.read_f32(OUTPUT_ADDR);
        assert!(close(got, want, 1e-4), "{name}: got {got}, want ~{want}");
    }
}

#[test]
fn lock_sums_are_bitwise_reference_under_every_model() {
    // Ticket order == element order: the result is the reference, bit for
    // bit, on every architecture and seed.
    let n = 512;
    let want = reference_sum(n).to_bits();
    for model in all_models() {
        let name = model.name();
        let report = run(model, &[lock_sum_grid(n, LockKind::TestAndTestAndSet)]);
        assert_eq!(
            report.values.read_f32(OUTPUT_ADDR).to_bits(),
            want,
            "{name}: lock sum must be bit-exact"
        );
    }
}

#[test]
fn bc_sigma_and_delta_match_brandes_reference() {
    let graph = Graph::power_law(1024, 8192, 0.6, 21);
    let source = (0..graph.num_nodes())
        .max_by_key(|&u| graph.degree(u))
        .expect("non-empty");
    let levels = graph.bfs_levels(source);
    let sigma = brandes_sigma(&graph, &levels);
    let delta = brandes_delta(&graph, &levels, &sigma);
    let (kernels, _) = bc_trace(&graph, "bc", 4.0);
    let report = run(
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        &kernels,
    );
    let mut sigma_checked = 0;
    let mut delta_checked = 0;
    for v in 0..graph.num_nodes() {
        if levels[v] == u32::MAX {
            continue;
        }
        if levels[v] != 0 && sigma[v] > 0.0 {
            let got = report.values.read_f32(sigma_addr(v));
            assert!(
                close(got, sigma[v], 0.01),
                "sigma[{v}]: got {got}, want {}",
                sigma[v]
            );
            sigma_checked += 1;
        }
        if delta[v] > 0.0 {
            let got = report.values.read_f32(delta_addr(v));
            assert!(
                close(got, delta[v], 0.02),
                "delta[{v}]: got {got}, want {}",
                delta[v]
            );
            delta_checked += 1;
        }
    }
    assert!(sigma_checked > 100, "checked {sigma_checked} sigmas");
    assert!(delta_checked > 50, "checked {delta_checked} deltas");
}

#[test]
fn pagerank_first_iteration_matches_reference() {
    let graph = Graph::uniform(512, 4096, 5);
    let n = graph.num_nodes();
    let rank0 = 1.0f32 / n as f32;
    let mut want = vec![0f32; n];
    for u in 0..n {
        let contrib = rank0 / graph.degree(u) as f32;
        for &v in &graph.adj[u] {
            want[v as usize] += contrib;
        }
    }
    let (kernels, _) = pagerank_trace(&graph, "prk", 1);
    let report = run(
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        &kernels,
    );
    for v in (0..n).step_by(13) {
        let got = report.values.read_f32(rank_next_addr(v, 0));
        assert!(
            close(got, want[v], 0.01),
            "rank_next[{v}]: got {got}, want {}",
            want[v]
        );
    }
}

#[test]
fn conv_gradient_accumulates_every_cta_partial() {
    let layer = layer_by_name("cnv2_3").expect("layer");
    let grid = conv_trace(&layer, Scale::Ci);
    let num_ctas = grid.ctas.len();
    // Word 0 of the (single) region accumulates lane 0 of every CTA.
    let want: f32 = (0..num_ctas)
        .map(|cta| 0.001f32 * ((cta % 31 + 1) as f32))
        .sum();
    for model in all_models() {
        let name = model.name();
        let report = run(model, std::slice::from_ref(&grid));
        let got = report.values.read_f32(WGRAD_BASE);
        assert!(
            close(got, want, 1e-3),
            "{name}: wgrad[0]={got}, want ~{want}"
        );
    }
}

#[test]
fn statistics_are_consistent() {
    let grid = atomic_sum_grid(1024, OUTPUT_ADDR);
    let report = run(Box::new(BaselineModel::new()), std::slice::from_ref(&grid));
    assert_eq!(report.stats.atomics, 1024);
    assert_eq!(report.stats.counter("det.rop.ops"), 1024);
    assert!(report.stats.warp_instrs > 0);
    assert!(report.stats.thread_instrs >= report.stats.warp_instrs);
    assert!(report.stats.ipc() > 0.0);
    assert_eq!(report.kernel_cycles.len(), 1);
    assert!(report.kernel_cycles[0].1 <= report.cycles());
}
