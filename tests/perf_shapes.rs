//! Coarse performance-shape invariants across models — the qualitative
//! relationships every figure of the paper depends on. These are generous
//! bounds (the exact ratios vary with scale), but the *orderings* must hold
//! or a figure has silently inverted.

use dab_repro::dab::{DabConfig, DabModel, Relaxation};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::GpuSim;
use dab_repro::gpu_sim::exec::{BaselineModel, ExecutionModel};
use dab_repro::gpu_sim::isa::LockKind;
use dab_repro::gpu_sim::kernel::KernelGrid;
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::gpu_sim::sched::SchedKind;
use dab_repro::gpudet::{GpuDetConfig, GpuDetModel};
use dab_repro::workloads::bc::bc_trace;
use dab_repro::workloads::graph::Graph;
use dab_repro::workloads::microbench::{atomic_sum_grid, lock_sum_grid, OUTPUT_ADDR};

fn gpu() -> GpuConfig {
    GpuConfig::tiny()
}

fn cycles(model: Box<dyn ExecutionModel>, kernels: &[KernelGrid]) -> u64 {
    GpuSim::new(gpu(), model, NdetSource::seeded(1))
        .run(kernels)
        .cycles()
}

fn bc_kernels() -> Vec<KernelGrid> {
    let graph = Graph::power_law(1024, 8192, 0.6, 9);
    bc_trace(&graph, "bc", 4.0).0
}

#[test]
fn fig2_shape_locks_far_slower_than_atomics() {
    let n = 2048;
    let base = cycles(
        Box::new(BaselineModel::new()),
        &[atomic_sum_grid(n, OUTPUT_ADDR)],
    );
    let ts = cycles(
        Box::new(BaselineModel::new()),
        &[lock_sum_grid(n, LockKind::TestAndSet)],
    );
    let bo = cycles(
        Box::new(BaselineModel::new()),
        &[lock_sum_grid(n, LockKind::TestAndSetBackoff)],
    );
    let tts = cycles(
        Box::new(BaselineModel::new()),
        &[lock_sum_grid(n, LockKind::TestAndTestAndSet)],
    );
    assert!(ts > base * 10, "TS {ts} vs atomicAdd {base}");
    assert!(ts > bo && bo > tts, "TS {ts} > BO {bo} > TTS {tts}");
    assert!(tts > base * 5, "even TTS is far slower than atomics");
}

#[test]
fn fig10_shape_dab_beats_gpudet_and_trails_baseline_moderately() {
    let kernels = bc_kernels();
    let base = cycles(Box::new(BaselineModel::new()), &kernels);
    let dab = cycles(
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        &kernels,
    );
    let det = cycles(
        Box::new(GpuDetModel::new(&gpu(), GpuDetConfig::default())),
        &kernels,
    );
    assert!(
        dab > base,
        "determinism is not free: dab {dab} vs base {base}"
    );
    assert!(
        dab < base * 3,
        "DAB overhead should be moderate: {dab} vs {base}"
    );
    assert!(det > dab * 2, "GPUDet {det} should trail DAB {dab} by 2x+");
}

#[test]
fn fig11_shape_srr_is_most_restrictive() {
    let kernels = bc_kernels();
    let run = |sched: SchedKind| {
        let cfg = DabConfig::paper_default()
            .with_scheduler(sched)
            .with_capacity(256)
            .with_fusion(false)
            .with_coalescing(false);
        cycles(Box::new(DabModel::new(&gpu(), cfg)), &kernels)
    };
    let srr = run(SchedKind::Srr);
    let gwat = run(SchedKind::Gwat);
    assert!(
        srr as f64 >= gwat as f64 * 0.98,
        "SRR ({srr}) should not beat GWAT ({gwat}) meaningfully"
    );
}

#[test]
fn fig12_shape_bigger_buffers_do_not_hurt_graphs() {
    let kernels = bc_kernels();
    let run = |cap: usize| {
        let cfg = DabConfig::paper_default()
            .with_capacity(cap)
            .with_fusion(false)
            .with_coalescing(false);
        cycles(Box::new(DabModel::new(&gpu(), cfg)), &kernels)
    };
    let small = run(32);
    let large = run(256);
    assert!(
        large as f64 <= small as f64 * 1.1,
        "capacity 256 ({large}) should be at least competitive with 32 ({small})"
    );
}

#[test]
fn fig18_shape_relaxations_recover_performance() {
    let kernels = bc_kernels();
    let run = |relax: Relaxation| {
        let cfg = DabConfig::paper_default().with_relaxation(relax);
        cycles(Box::new(DabModel::new(&gpu(), cfg)), &kernels)
    };
    let full = run(Relaxation::None);
    let cif = run(Relaxation::NrCif);
    assert!(
        cif as f64 <= full as f64 * 1.05,
        "cluster-independent flushing ({cif}) should not be slower than full DAB ({full})"
    );
}
