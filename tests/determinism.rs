//! The repository's central claim, tested end to end across crates:
//!
//! 1. the non-deterministic baseline produces different floating-point
//!    results under different hardware-timing seeds;
//! 2. DAB produces bitwise identical results for *every* point of its
//!    design space (buffer level, scheduler, capacity, fusion, coalescing,
//!    offset flushing, SM gating);
//! 3. GPUDet is also deterministic (at much higher cost);
//! 4. the relaxed DAB variants of the limitation study execute correctly
//!    (they trade the determinism guarantee away by design).

use dab_repro::dab::{BufferLevel, DabConfig, DabModel, Relaxation};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::GpuSim;
use dab_repro::gpu_sim::exec::{BaselineModel, ExecutionModel};
use dab_repro::gpu_sim::kernel::KernelGrid;
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::gpu_sim::sched::SchedKind;
use dab_repro::gpudet::{GpuDetConfig, GpuDetModel};
use dab_repro::workloads::bc::bc_trace;
use dab_repro::workloads::conv::{conv_trace, layer_by_name};
use dab_repro::workloads::graph::Graph;
use dab_repro::workloads::microbench::order_sensitive_grid;
use dab_repro::workloads::pagerank::pagerank_trace;
use dab_repro::workloads::scale::Scale;

fn gpu() -> GpuConfig {
    GpuConfig::tiny()
}

fn run(model: Box<dyn ExecutionModel>, kernels: &[KernelGrid], seed: u64) -> u64 {
    GpuSim::new(gpu(), model, NdetSource::seeded(seed))
        .run(kernels)
        .digest()
}

fn workloads() -> Vec<(&'static str, Vec<KernelGrid>)> {
    let graph = Graph::power_law(512, 4096, 0.6, 11);
    let (bc, _) = bc_trace(&graph, "bc", 4.0);
    // Power-law: varying degrees give varying push values, so ordering
    // differences are visible in the f32 sums.
    let (prk, _) = pagerank_trace(&Graph::power_law(512, 4096, 0.6, 3), "prk", 1);
    // cnv2_3: every CTA accumulates into the same region, so each gradient
    // word sums 32 different values and ordering differences surface.
    let conv = conv_trace(&layer_by_name("cnv2_3").expect("layer"), Scale::Ci);
    vec![
        ("microbench", vec![order_sensitive_grid(24)]),
        ("bc", bc),
        ("pagerank", prk),
        ("conv", vec![conv]),
    ]
}

#[test]
fn baseline_is_non_deterministic_on_every_workload_family() {
    for (name, kernels) in workloads() {
        let digests: Vec<u64> = (0..5)
            .map(|seed| run(Box::new(BaselineModel::new()), &kernels, seed))
            .collect();
        assert!(
            digests.windows(2).any(|w| w[0] != w[1]),
            "baseline should vary across seeds on {name}: {digests:?}"
        );
    }
}

#[test]
fn dab_headline_config_is_deterministic_on_every_workload_family() {
    for (name, kernels) in workloads() {
        let digests: Vec<u64> = (0..4)
            .map(|seed| {
                run(
                    Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
                    &kernels,
                    seed,
                )
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "DAB must be bitwise deterministic on {name}: {digests:?}"
        );
    }
}

#[test]
fn dab_determinism_across_design_space() {
    let kernels = vec![order_sensitive_grid(32)];
    let mut configs: Vec<DabConfig> = Vec::new();
    for sched in [
        SchedKind::Srr,
        SchedKind::Gtrr,
        SchedKind::Gtar,
        SchedKind::Gwat,
    ] {
        for capacity in [32usize, 128] {
            configs.push(
                DabConfig::paper_default()
                    .with_scheduler(sched)
                    .with_capacity(capacity),
            );
        }
    }
    configs.push(DabConfig::paper_default().with_fusion(false));
    configs.push(DabConfig::paper_default().with_coalescing(false));
    configs.push(DabConfig::paper_default().with_offset_flush(true));
    configs.push(DabConfig::paper_default().with_active_sms(1));
    configs.push(DabConfig::warp_level());
    configs.push(DabConfig {
        level: BufferLevel::Warp,
        scheduler: SchedKind::Gwat,
        ..DabConfig::paper_default()
    });

    for cfg in configs {
        let label = cfg.label();
        let a = run(Box::new(DabModel::new(&gpu(), cfg.clone())), &kernels, 1);
        let b = run(Box::new(DabModel::new(&gpu(), cfg)), &kernels, 2);
        assert_eq!(a, b, "config {label} must be deterministic");
    }
}

#[test]
fn dab_different_configs_may_differ_but_each_is_self_consistent() {
    // Different design points may legally produce different (deterministic)
    // f32 results: fusion changes the local reduction order.
    let kernels = vec![order_sensitive_grid(32)];
    let fused = run(
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        &kernels,
        1,
    );
    let unfused = run(
        Box::new(DabModel::new(
            &gpu(),
            DabConfig::paper_default().with_fusion(false),
        )),
        &kernels,
        1,
    );
    // Both are reproducible; equality between them is not required (and
    // typically does not hold).
    let fused2 = run(
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        &kernels,
        9,
    );
    assert_eq!(fused, fused2);
    let unfused2 = run(
        Box::new(DabModel::new(
            &gpu(),
            DabConfig::paper_default().with_fusion(false),
        )),
        &kernels,
        9,
    );
    assert_eq!(unfused, unfused2);
}

#[test]
fn gpudet_is_deterministic_on_every_workload_family() {
    for (name, kernels) in workloads() {
        let digests: Vec<u64> = (0..3)
            .map(|seed| {
                run(
                    Box::new(GpuDetModel::new(&gpu(), GpuDetConfig::default())),
                    &kernels,
                    seed,
                )
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "GPUDet must be deterministic on {name}: {digests:?}"
        );
    }
}

#[test]
fn relaxed_variants_execute_all_atomics() {
    let kernels = vec![order_sensitive_grid(24)];
    let expected_atomics = kernels[0].atomics();
    for relax in [Relaxation::Nr, Relaxation::NrOf, Relaxation::NrCif] {
        let cfg = DabConfig::paper_default().with_relaxation(relax);
        let report = GpuSim::new(
            gpu(),
            Box::new(DabModel::new(&gpu(), cfg)),
            NdetSource::seeded(5),
        )
        .run(&kernels);
        assert_eq!(
            report.stats.atomics, expected_atomics,
            "{relax:?} must not drop atomics"
        );
        assert!(report.stats.counter("det.rop.ops") > 0);
    }
}

#[test]
fn integer_reductions_agree_across_all_models() {
    // Integer addition is associative and commutative: every model must
    // produce the same exact result regardless of ordering.
    use dab_repro::gpu_sim::isa::{AtomicAccess, AtomicOp, Instr, Value, WarpProgram};
    use dab_repro::gpu_sim::kernel::CtaSpec;
    let grid = KernelGrid::new(
        "intsum",
        (0..12)
            .map(|c| {
                CtaSpec::new(
                    c,
                    vec![WarpProgram::new(
                        vec![Instr::Red {
                            op: AtomicOp::AddU32,
                            accesses: (0..32)
                                .map(|l| {
                                    AtomicAccess::new(l, 0x9000, Value::U32((c * 32 + l) as u32))
                                })
                                .collect(),
                        }],
                        32,
                    )],
                )
            })
            .collect(),
    );
    let expected: u32 = (0..12 * 32).sum::<usize>() as u32;
    let models: Vec<Box<dyn ExecutionModel>> = vec![
        Box::new(BaselineModel::new()),
        Box::new(DabModel::new(&gpu(), DabConfig::paper_default())),
        Box::new(DabModel::new(&gpu(), DabConfig::warp_level())),
        Box::new(GpuDetModel::new(&gpu(), GpuDetConfig::default())),
    ];
    for model in models {
        let name = model.name();
        let report =
            GpuSim::new(gpu(), model, NdetSource::seeded(3)).run(std::slice::from_ref(&grid));
        assert_eq!(
            report.values.read_u32(0x9000),
            expected,
            "{name} computed a wrong integer sum"
        );
    }
}
