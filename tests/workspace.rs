//! Workspace-manifest hygiene: the root `Cargo.toml` keeps its dependency
//! tables alphabetically sorted and its member globs resolving to real
//! crates, so diffs stay one-line and merge-friendly as crates are added.

use std::path::Path;

fn manifest() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Key lines of one `[section]`, in file order.
fn section_keys(manifest: &str, section: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut inside = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(name) = line.strip_prefix('[') {
            inside = name.strip_suffix(']') == Some(section);
            continue;
        }
        if !inside || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let key = line.split(['=', ' ', '.']).next().unwrap_or("");
        if !key.is_empty() {
            keys.push(key.to_string());
        }
    }
    keys
}

fn assert_sorted(what: &str, keys: &[String]) {
    let mut sorted = keys.to_vec();
    sorted.sort();
    assert_eq!(
        keys,
        &sorted[..],
        "{what} keys must stay alphabetically sorted"
    );
    for pair in sorted.windows(2) {
        assert_ne!(pair[0], pair[1], "{what} lists {} twice", pair[0]);
    }
}

#[test]
fn workspace_dependency_keys_are_sorted() {
    let manifest = manifest();
    let keys = section_keys(&manifest, "workspace.dependencies");
    assert!(
        keys.len() >= 9,
        "expected every workspace crate to be listed, got {keys:?}"
    );
    assert_sorted("[workspace.dependencies]", &keys);
}

#[test]
fn package_dependency_keys_are_sorted() {
    let manifest = manifest();
    for section in ["dependencies", "dev-dependencies"] {
        let keys = section_keys(&manifest, section);
        assert!(!keys.is_empty(), "[{section}] missing from root manifest");
        assert_sorted(&format!("[{section}]"), &keys);
    }
}

#[test]
fn member_globs_resolve_to_crates() {
    let manifest = manifest();
    let members_line = manifest
        .lines()
        .find(|l| l.trim_start().starts_with("members"))
        .expect("workspace members list");
    let globs: Vec<&str> = members_line.split('"').skip(1).step_by(2).collect();
    let mut sorted = globs.clone();
    sorted.sort();
    assert_eq!(globs, sorted, "members globs must stay sorted");

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut workspace_deps = section_keys(&manifest, "workspace.dependencies");
    workspace_deps.sort();
    for glob in globs {
        let dir = glob
            .strip_suffix("/*")
            .unwrap_or_else(|| panic!("members entry {glob:?} is not a <dir>/* glob"));
        let mut found = 0;
        for entry in std::fs::read_dir(root.join(dir)).expect("member dir readable") {
            let path = entry.expect("dir entry").path();
            if !path.is_dir() {
                continue;
            }
            found += 1;
            let crate_manifest = path.join("Cargo.toml");
            assert!(
                crate_manifest.is_file(),
                "{} matches the members glob but has no Cargo.toml",
                path.display()
            );
            // Every member must be addressable via [workspace.dependencies].
            let text = std::fs::read_to_string(&crate_manifest).expect("member manifest");
            let name = section_keys(&text, "package")
                .into_iter()
                .next()
                .map(|_| {
                    text.lines()
                        .find_map(|l| {
                            l.trim()
                                .strip_prefix("name")
                                .and_then(|r| r.trim().strip_prefix('='))
                                .map(|v| v.trim().trim_matches('"').to_string())
                        })
                        .expect("member package name")
                })
                .expect("member [package] section");
            assert!(
                workspace_deps.binary_search(&name).is_ok(),
                "member crate {name} missing from [workspace.dependencies]"
            );
        }
        assert!(found > 0, "members glob {glob:?} matches no crates");
    }
}
