//! ML training reductions under DAB: backward-filter convolution.
//!
//! Generates the cuDNN-Algorithm-0-style trace for a ResNet layer (strided
//! `red.add.f32` into a partitioned weight gradient) and walks through
//! DAB's optimization ladder: plain buffering → atomic fusion → flush
//! coalescing, reporting cycles and flush statistics at each step, plus the
//! determinism check.
//!
//! ```bash
//! cargo run --release --example convolution
//! ```

use dab_repro::dab::{DabConfig, DabModel};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::GpuSim;
use dab_repro::gpu_sim::exec::{BaselineModel, ExecutionModel};
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::workloads::conv::{conv_trace, layer_by_name};
use dab_repro::workloads::scale::Scale;

fn main() {
    let layer = layer_by_name("cnv3_2").expect("table III layer");
    let grid = conv_trace(&layer, Scale::Ci);
    println!(
        "Layer {}: filter {}x{}x{}x{}, {} regions, {} CTAs, {} atomics (PKI {:.2})",
        layer.name,
        layer.k,
        layer.c,
        layer.r,
        layer.r,
        layer.regions_at(Scale::Ci),
        grid.ctas.len(),
        grid.atomics(),
        grid.atomics_pki()
    );
    println!();

    let gpu = GpuConfig::small();
    let run = |model: Box<dyn ExecutionModel>, seed: u64| {
        GpuSim::new(gpu.clone(), model, NdetSource::seeded(seed)).run(std::slice::from_ref(&grid))
    };

    let base = run(Box::new(BaselineModel::new()), 1);
    println!("baseline:            {:>8} cycles", base.cycles());

    let steps = [
        (
            "DAB (no opts)",
            DabConfig::paper_default()
                .with_fusion(false)
                .with_coalescing(false),
        ),
        (
            "DAB + fusion",
            DabConfig::paper_default().with_coalescing(false),
        ),
        ("DAB + fusion + coalescing", DabConfig::paper_default()),
    ];
    for (name, cfg) in steps {
        let report = run(Box::new(DabModel::new(&gpu, cfg.clone())), 1);
        println!(
            "{name:<21}{:>8} cycles ({:.2}x)  flushes={} entries={} txs={} fused={}",
            report.cycles(),
            report.cycles() as f64 / base.cycles() as f64,
            report.stats.counter("det.dab.flushes"),
            report.stats.counter("det.dab.flush_entries"),
            report.stats.counter("det.dab.flush_txs"),
            report.stats.counter("det.dab.fused_ops"),
        );
    }
    println!();

    // Determinism check across seeds with the full configuration.
    let a = run(Box::new(DabModel::new(&gpu, DabConfig::paper_default())), 3);
    let b = run(Box::new(DabModel::new(&gpu, DabConfig::paper_default())), 4);
    assert_eq!(a.digest(), b.digest(), "DAB must be deterministic");
    println!(
        "weight gradients bitwise identical across timing seeds: digest {:016x}",
        a.digest()
    );

    let c = run(Box::new(BaselineModel::new()), 3);
    let d = run(Box::new(BaselineModel::new()), 4);
    println!(
        "baseline gradients identical across seeds: {} (expected: false)",
        c.digest() == d.digest()
    );
}
