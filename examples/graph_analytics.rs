//! Graph analytics under DAB: Betweenness Centrality end to end.
//!
//! Builds a power-law graph, generates the push-based BC trace (one kernel
//! per BFS level, forward + backward), and compares:
//!
//! - result reproducibility (baseline vs. DAB across timing seeds),
//! - the determinism tax (cycles vs. the non-deterministic baseline),
//! - GPUDet's cost on the same workload.
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```

use dab_repro::dab::{DabConfig, DabModel};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::GpuSim;
use dab_repro::gpu_sim::exec::{BaselineModel, ExecutionModel};
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::gpudet::{GpuDetConfig, GpuDetModel};
use dab_repro::workloads::bc::{bc_trace, sigma_addr};
use dab_repro::workloads::graph::{brandes_sigma, Graph};

fn main() {
    let graph = Graph::power_law(4096, 32768, 0.6, 42);
    println!(
        "Graph: {} nodes, {} edges (power-law, seeded)",
        graph.num_nodes(),
        graph.num_edges()
    );
    let (kernels, info) = bc_trace(&graph, "bc", 4.1);
    println!(
        "BC trace: {} kernels, {} atomics, {:.2} atomics/kilo-instruction",
        info.kernels, info.atomics, info.pki
    );
    println!();

    let run = |model: Box<dyn ExecutionModel>, seed: u64| {
        GpuSim::new(GpuConfig::small(), model, NdetSource::seeded(seed)).run(&kernels)
    };
    let gpu = GpuConfig::small();

    // Reproducibility across timing seeds.
    let base1 = run(Box::new(BaselineModel::new()), 1);
    let base2 = run(Box::new(BaselineModel::new()), 2);
    println!(
        "baseline digests across seeds: {:016x} vs {:016x}  (equal: {})",
        base1.digest(),
        base2.digest(),
        base1.digest() == base2.digest()
    );

    let dab1 = run(Box::new(DabModel::new(&gpu, DabConfig::paper_default())), 1);
    let dab2 = run(Box::new(DabModel::new(&gpu, DabConfig::paper_default())), 2);
    println!(
        "DAB      digests across seeds: {:016x} vs {:016x}  (equal: {})",
        dab1.digest(),
        dab2.digest(),
        dab1.digest() == dab2.digest()
    );
    assert_eq!(dab1.digest(), dab2.digest(), "DAB must be deterministic");

    let det = run(Box::new(GpuDetModel::new(&gpu, GpuDetConfig::default())), 1);
    println!();
    println!(
        "cycles: baseline {}, DAB {} ({:.2}x), GPUDet {} ({:.2}x)",
        base1.cycles(),
        dab1.cycles(),
        dab1.cycles() as f64 / base1.cycles() as f64,
        det.cycles(),
        det.cycles() as f64 / base1.cycles() as f64
    );

    // Sanity: the accumulated sigma values approximate the host reference.
    let source = (0..graph.num_nodes())
        .max_by_key(|&u| graph.degree(u))
        .expect("non-empty graph");
    let levels = graph.bfs_levels(source);
    let sigma = brandes_sigma(&graph, &levels);
    let mut checked = 0;
    for v in (0..graph.num_nodes()).step_by(97) {
        if levels[v] != u32::MAX && levels[v] != 0 && sigma[v] > 0.0 {
            let got = dab1.values.read_f32(sigma_addr(v));
            assert!(
                (got - sigma[v]).abs() <= 0.01 * sigma[v].max(1.0),
                "sigma[{v}] diverged: {got} vs {}",
                sigma[v]
            );
            checked += 1;
        }
    }
    println!();
    println!("verified {checked} sigma values against the Brandes host reference.");
}
