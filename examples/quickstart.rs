//! Quickstart: the whole point of DAB in sixty lines.
//!
//! Runs the same floating-point atomic reduction four times on the
//! simulated GPU — twice on the non-deterministic baseline (different
//! hardware-timing seeds), twice under DAB — and prints the resulting bits.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dab_repro::dab::{DabConfig, DabModel};
use dab_repro::gpu_sim::config::GpuConfig;
use dab_repro::gpu_sim::engine::GpuSim;
use dab_repro::gpu_sim::exec::BaselineModel;
use dab_repro::gpu_sim::ndet::NdetSource;
use dab_repro::workloads::microbench::{atomic_sum_grid, reference_sum, OUTPUT_ADDR};

fn main() {
    let n = 4096;
    println!("Summing {n} f32 values into one cell with atomicAdd.");
    println!("Host reference (ascending order): {}", reference_sum(n));
    println!();

    println!("Non-deterministic baseline GPU, two runs (different timing seeds):");
    for seed in [7, 8] {
        let sim = GpuSim::new(
            GpuConfig::small(),
            Box::new(BaselineModel::new()),
            NdetSource::seeded(seed),
        );
        let report = sim.run(&[atomic_sum_grid(n, OUTPUT_ADDR)]);
        let sum = report.values.read_f32(OUTPUT_ADDR);
        println!(
            "  seed {seed}: sum = {sum:<12} bits = 0x{:08x}   ({} cycles)",
            sum.to_bits(),
            report.cycles()
        );
    }
    println!();

    println!("DAB (GWAT-64-AF-Coalescing), two runs (same two seeds):");
    let mut dab_bits = Vec::new();
    for seed in [7, 8] {
        let gpu = GpuConfig::small();
        let model = DabModel::new(&gpu, DabConfig::paper_default());
        let sim = GpuSim::new(gpu, Box::new(model), NdetSource::seeded(seed));
        let report = sim.run(&[atomic_sum_grid(n, OUTPUT_ADDR)]);
        let sum = report.values.read_f32(OUTPUT_ADDR);
        dab_bits.push(sum.to_bits());
        println!(
            "  seed {seed}: sum = {sum:<12} bits = 0x{:08x}   ({} cycles)",
            sum.to_bits(),
            report.cycles()
        );
    }
    println!();
    assert_eq!(
        dab_bits[0], dab_bits[1],
        "DAB must be bitwise deterministic"
    );
    println!("DAB produced bitwise identical results under different hardware timing.");
}
